// IR optimizer tests (DESIGN.md §12): per-pass rewrite semantics on
// hand-written programs, level-0 byte-identity with the canonicalize-only
// flow, a randomized pass-order fuzz that checks the pseudo-SSA
// invariants after every pass, and textual round-trips of optimized
// programs.
#include "core/Flow.h"
#include "ir/PassManager.h"
#include "ir/TextIO.h"
#include "ir/Transforms.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

namespace cfd {
namespace {

/// Two outputs computed by byte-identical contraction statements — the
/// smallest program where CSE pays off end to end.
constexpr const char* kRedundantContraction = R"(
var input  A : [6 7]
var input  x : [7]
var output y : [6]
var output z : [6]
y = A # x . [[1 2]]
z = A # x . [[1 2]]
)";

ir::Program optimized(const char* text, int level) {
  ir::Program program = ir::parseProgramText(text);
  ir::OptimizeOptions options;
  options.level = level;
  ir::optimize(program, options);
  return program;
}

// ---- Pass selection ----

TEST(OptimizeOptionsTest, EnabledPassesFollowTheLevelGate) {
  ir::OptimizeOptions options;
  options.level = 0;
  EXPECT_EQ(ir::enabledPasses(options),
            (std::vector<std::string>{"canonicalize"}));
  options.level = 1;
  EXPECT_EQ(ir::enabledPasses(options),
            (std::vector<std::string>{"canonicalize", "cse", "fold", "dce"}));
  options.level = 2;
  EXPECT_EQ(ir::enabledPasses(options),
            (std::vector<std::string>{"canonicalize", "cse", "fold", "fuse",
                                      "dce"}));
  options.fuse = false;
  EXPECT_EQ(ir::enabledPasses(options),
            (std::vector<std::string>{"canonicalize", "cse", "fold", "dce"}));
}

TEST(OptimizeOptionsTest, UnknownPassNameThrows) {
  ir::Program program = ir::parseProgramText("input a : [2]\n"
                                             "output b : [2]\n"
                                             "b = copy(a)\n");
  EXPECT_THROW(ir::runPass(program, "loop-unroll"), InternalError);
}

// ---- CSE ----

TEST(CsePassTest, DuplicateTransientChainsCollapse) {
  const ir::Program program = optimized("input A : [4 4]\n"
                                        "input x : [4]\n"
                                        "output y : [4]\n"
                                        "output z : [4]\n"
                                        "transient t0 : [4]\n"
                                        "transient t1 : [4]\n"
                                        "t0 = contract(A, x, pairs={(1,0)})\n"
                                        "t1 = contract(A, x, pairs={(1,0)})\n"
                                        "y = t0 + t0\n"
                                        "z = t1 + t1\n",
                                        /*level=*/1);
  // The duplicate contraction collapses onto t0, which in turn makes the
  // two entry-wise statements identical — the second becomes a copy.
  EXPECT_EQ(program.str(), "input A : [4 4]\n"
                           "input x : [4]\n"
                           "output y : [4]\n"
                           "output z : [4]\n"
                           "transient t0 : [4]\n"
                           "t0 = contract(A, x, pairs={(1,0)})\n"
                           "y = t0 + t0\n"
                           "z = copy(y)\n");
}

TEST(CsePassTest, DuplicateOutputBecomesCopyOfRepresentative) {
  const ir::Program program = optimized("input A : [4 4]\n"
                                        "input x : [4]\n"
                                        "output y : [4]\n"
                                        "output z : [4]\n"
                                        "y = contract(A, x, pairs={(1,0)})\n"
                                        "z = contract(A, x, pairs={(1,0)})\n",
                                        /*level=*/1);
  EXPECT_EQ(program.str(), "input A : [4 4]\n"
                           "input x : [4]\n"
                           "output y : [4]\n"
                           "output z : [4]\n"
                           "y = contract(A, x, pairs={(1,0)})\n"
                           "z = copy(y)\n");
}

TEST(CsePassTest, CommutativeEntryWiseOpsMatchEitherOperandOrder) {
  const ir::Program program = optimized("input a : [3]\n"
                                        "input b : [3]\n"
                                        "output y : [3]\n"
                                        "output z : [3]\n"
                                        "y = a * b\n"
                                        "z = b * a\n",
                                        /*level=*/1);
  EXPECT_NE(program.str().find("z = copy(y)"), std::string::npos)
      << program.str();
}

TEST(CsePassTest, NonCommutativeOpsAreNotMerged) {
  const ir::Program program = optimized("input a : [3]\n"
                                        "input b : [3]\n"
                                        "output y : [3]\n"
                                        "output z : [3]\n"
                                        "y = a - b\n"
                                        "z = b - a\n",
                                        /*level=*/1);
  EXPECT_NE(program.str().find("z = b - a"), std::string::npos)
      << program.str();
}

// ---- Constant folding / algebraic identities ----

TEST(FoldPassTest, MulByFilledOneBecomesCopy) {
  const ir::Program program = optimized("input x : [3 3]\n"
                                        "output y : [3 3]\n"
                                        "transient one : [3 3]\n"
                                        "one = fill(1)\n"
                                        "y = x * one\n",
                                        /*level=*/1);
  EXPECT_EQ(program.str(), "input x : [3 3]\n"
                           "output y : [3 3]\n"
                           "y = copy(x)\n");
}

TEST(FoldPassTest, AddZeroIsIdentityAndMulZeroIsFill) {
  const ir::Program program = optimized("input x : [3]\n"
                                        "output y : [3]\n"
                                        "output z : [3]\n"
                                        "transient zero : [3]\n"
                                        "zero = fill(0)\n"
                                        "y = x + zero\n"
                                        "z = x * zero\n",
                                        /*level=*/1);
  EXPECT_EQ(program.str(), "input x : [3]\n"
                           "output y : [3]\n"
                           "output z : [3]\n"
                           "y = copy(x)\n"
                           "z = fill(0)\n");
}

TEST(FoldPassTest, FillFedEntryWiseOpsFoldArithmetically) {
  const ir::Program program = optimized("output y : [2 2]\n"
                                        "transient a : [2 2]\n"
                                        "transient b : [2 2]\n"
                                        "a = fill(2)\n"
                                        "b = fill(3)\n"
                                        "y = a * b\n",
                                        /*level=*/1);
  EXPECT_EQ(program.str(), "output y : [2 2]\n"
                           "y = fill(6)\n");
}

TEST(FoldPassTest, InversePermutedCopiesCollapseToIdentity) {
  const ir::Program program = optimized("input x : [2 3]\n"
                                        "output y : [2 3]\n"
                                        "transient t0 : [3 2]\n"
                                        "t0 = copy(x, perm=[1 0])\n"
                                        "y = copy(t0, perm=[1 0])\n",
                                        /*level=*/1);
  EXPECT_EQ(program.str(), "input x : [2 3]\n"
                           "output y : [2 3]\n"
                           "y = copy(x)\n");
}

// ---- DCE ----

TEST(DcePassTest, DeadTransientChainIsRemoved) {
  const ir::Program program = optimized("input a : [3]\n"
                                        "output y : [3]\n"
                                        "transient t0 : [3]\n"
                                        "transient t1 : [3]\n"
                                        "t0 = a + a\n"
                                        "t1 = t0 * t0\n"
                                        "y = a - a\n",
                                        /*level=*/1);
  EXPECT_EQ(program.str(), "input a : [3]\n"
                           "output y : [3]\n"
                           "y = a - a\n");
}

// ---- Fusion ----

TEST(FusePassTest, PermutedCopyIsAbsorbedIntoContraction) {
  // t0 = A^T, so contracting t0 dim 0 with B dim 0 is contracting
  // A dim 1 with B dim 0 — the fused form must remap the pair through
  // the copy's permutation.
  const ir::Program program =
      optimized("input A : [4 5]\n"
                "input B : [5 6]\n"
                "output C : [4 6]\n"
                "transient t0 : [5 4]\n"
                "t0 = copy(A, perm=[1 0])\n"
                "C = contract(t0, B, pairs={(0,0)})\n",
                /*level=*/2);
  EXPECT_EQ(program.str(), "input A : [4 5]\n"
                           "input B : [5 6]\n"
                           "output C : [4 6]\n"
                           "C = contract(A, B, pairs={(1,0)})\n");
}

TEST(FusePassTest, FusedContractionStaysOutOfLevelOne) {
  const ir::Program program =
      optimized("input A : [4 5]\n"
                "input B : [5 6]\n"
                "output C : [4 6]\n"
                "transient t0 : [5 4]\n"
                "t0 = copy(A, perm=[1 0])\n"
                "C = contract(t0, B, pairs={(0,0)})\n",
                /*level=*/1);
  EXPECT_NE(program.str().find("t0 = copy(A, perm=[1 0])"),
            std::string::npos)
      << program.str();
}

TEST(FusePassTest, NonAdjacentIdentityCopyIsRetargeted) {
  // t0's definition and the copy that publishes it are separated by an
  // unrelated statement, so canonicalize's adjacent retargeting cannot
  // fire — the fuse pass handles the general case.
  const ir::Program program = optimized("input a : [3]\n"
                                        "input b : [3]\n"
                                        "output w : [3]\n"
                                        "output y : [3]\n"
                                        "transient t0 : [3]\n"
                                        "t0 = a + b\n"
                                        "w = a * b\n"
                                        "y = copy(t0)\n",
                                        /*level=*/2);
  EXPECT_EQ(program.str(), "input a : [3]\n"
                           "input b : [3]\n"
                           "output w : [3]\n"
                           "output y : [3]\n"
                           "y = a + b\n"
                           "w = a * b\n");
}

// ---- Level 0 matches the canonicalize-only flow byte for byte ----

TEST(OptLevelZeroTest, ProgramsMatchCanonicalizedLoweringExactly) {
  const char* sources[] = {test::kInverseHelmholtz, test::kMatMul2D,
                           test::kEntryWiseChain, kRedundantContraction};
  for (const char* source : sources) {
    FlowOptions options;
    options.optimize.level = 0;
    const Flow flow = Flow::compile(source, options);
    ir::Program manual = flow.loweredProgram();
    ir::canonicalize(manual);
    EXPECT_EQ(flow.program().str(), manual.str()) << source;
  }
}

TEST(OptLevelZeroTest, ArtifactsMatchDefaultLevelWhenOptimizerIsANoOp) {
  // The Helmholtz lowering has no duplicate subexpressions, fills, or
  // copies, so every optimization level must produce byte-identical
  // artifacts (the golden tests pin the default-level bytes).
  FlowOptions level0;
  level0.optimize.level = 0;
  const Flow base = Flow::compile(test::kInverseHelmholtz, level0);
  FlowOptions level2;
  level2.optimize.level = 2;
  const Flow opt = Flow::compile(test::kInverseHelmholtz, level2);
  EXPECT_EQ(base.cCode(), opt.cCode());
  EXPECT_EQ(base.mnemosyneConfig(), opt.mnemosyneConfig());
  EXPECT_EQ(base.hostCode(), opt.hostCode());
}

TEST(OptLevelZeroTest, RedundantProgramValidatesAtEveryLevel) {
  for (int level = 0; level <= 2; ++level) {
    FlowOptions options;
    options.optimize.level = level;
    const Flow flow = Flow::compile(kRedundantContraction, options);
    EXPECT_LE(flow.validate(), 1e-8) << "level " << level;
  }
  // And the optimizer actually removed the duplicate contraction.
  FlowOptions level1;
  level1.optimize.level = 1;
  const Flow flow = Flow::compile(kRedundantContraction, level1);
  EXPECT_NE(flow.program().str().find("z = copy(y)"), std::string::npos)
      << flow.program().str();
}

// ---- Randomized pass-order fuzz ----

TEST(PassOrderFuzzTest, EveryRandomOrderKeepsTheProgramVerified) {
  std::vector<std::string> corpus = {
      "input A : [4 4]\n"
      "input x : [4]\n"
      "output y : [4]\n"
      "output z : [4]\n"
      "transient t0 : [4]\n"
      "transient t1 : [4]\n"
      "t0 = contract(A, x, pairs={(1,0)})\n"
      "t1 = contract(A, x, pairs={(1,0)})\n"
      "y = t0 + t0\n"
      "z = t1 + t1\n",
      "input x : [3]\n"
      "output y : [3]\n"
      "output z : [3]\n"
      "transient zero : [3]\n"
      "transient t0 : [3]\n"
      "zero = fill(0)\n"
      "t0 = x + zero\n"
      "y = t0 * t0\n"
      "z = copy(t0)\n",
      "input A : [4 5]\n"
      "input B : [5 6]\n"
      "output C : [4 6]\n"
      "transient t0 : [5 4]\n"
      "transient t1 : [4 6]\n"
      "t0 = copy(A, perm=[1 0])\n"
      "t1 = contract(t0, B, pairs={(0,0)})\n"
      "C = copy(t1)\n",
  };
  for (const char* source :
       {test::kInverseHelmholtz, test::kEntryWiseChain, test::kMatMul2D})
    corpus.push_back(Flow::compile(source).loweredProgram().str());

  std::mt19937 rng(20260808);
  std::vector<std::string> order(ir::kPassNames.begin(),
                                 ir::kPassNames.end());
  for (int round = 0; round < 20; ++round) {
    for (const std::string& text : corpus) {
      ir::Program program = ir::parseProgramText(text);
      std::shuffle(order.begin(), order.end(), rng);
      for (const std::string& pass : order) {
        ir::runPass(program, pass);
        ASSERT_NO_THROW(program.verify())
            << "after pass '" << pass << "' in round " << round << " on:\n"
            << text;
      }
    }
  }
}

// ---- TextIO round-trips of optimized programs ----

TEST(TextIoRoundTripTest, OptimizedProgramsRoundTripThroughText) {
  for (const char* source :
       {test::kInverseHelmholtz, test::kEntryWiseChain, test::kMatMul2D,
        kRedundantContraction}) {
    for (int level = 1; level <= 2; ++level) {
      FlowOptions options;
      options.optimize.level = level;
      const Flow flow = Flow::compile(source, options);
      const std::string text = flow.program().str();
      EXPECT_EQ(ir::parseProgramText(text).str(), text)
          << "level " << level << " on " << source;
    }
  }
}

// ---- Report plumbing ----

TEST(OptimizeReportTest, ReportCountsOpsAndAggregatesPassRuns) {
  ir::Program program =
      ir::parseProgramText("input A : [4 4]\n"
                           "input x : [4]\n"
                           "output y : [4]\n"
                           "output z : [4]\n"
                           "y = contract(A, x, pairs={(1,0)})\n"
                           "z = contract(A, x, pairs={(1,0)})\n");
  const ir::OptimizeReport report = ir::optimize(program);
  EXPECT_EQ(report.opsBefore, 2);
  EXPECT_EQ(report.opsAfter, 2); // contract + copy
  EXPECT_GE(report.iterations, 1);
  const std::vector<ir::PassResult> totals = report.aggregated();
  // Aggregation merges fixpoint rounds: one entry per distinct pass.
  for (std::size_t i = 0; i < totals.size(); ++i)
    for (std::size_t j = i + 1; j < totals.size(); ++j)
      EXPECT_NE(totals[i].name, totals[j].name);
  EXPECT_FALSE(report.str().empty());
}

TEST(OptimizeReportTest, FlowExposesTheReportOfItsCompile) {
  FlowOptions options;
  options.optimize.level = 1;
  const Flow flow = Flow::compile(kRedundantContraction, options);
  const ir::OptimizeReport& report = flow.optimizeReport();
  EXPECT_GT(report.passes.size(), 0u);
  EXPECT_EQ(report.opsAfter,
            static_cast<int>(flow.program().operations().size()));
}

} // namespace
} // namespace cfd
