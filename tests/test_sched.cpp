#include "dsl/Parser.h"
#include "ir/Lowering.h"
#include "sched/Reschedule.h"
#include "sched/Schedule.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

namespace cfd::sched {
namespace {

// The Schedule keeps a pointer to its Program, so both live behind one
// stable heap allocation.
struct Compiled {
  std::unique_ptr<ir::Program> program;
  Schedule schedule;
};

Compiled compile(const char* source, LayoutOptions layoutOptions = {}) {
  Compiled result;
  result.program =
      std::make_unique<ir::Program>(ir::lower(dsl::parseAndCheck(source)));
  result.schedule = buildReferenceSchedule(*result.program, layoutOptions);
  return result;
}

TEST(ReferenceScheduleTest, StatementPerOperation) {
  const Compiled c = compile(test::kInverseHelmholtz);
  EXPECT_EQ(c.schedule.statements.size(), c.program->operations().size());
  // Reference order: reductions innermost.
  for (const auto& stmt : c.schedule.statements) {
    for (std::size_t p = 1; p < stmt.loops.size(); ++p)
      if (stmt.loops[p - 1].isReduction)
        EXPECT_TRUE(stmt.loops[p].isReduction)
            << "reduction loop before an output loop in " << stmt.name;
    if (stmt.kind == ir::OpKind::Contract && stmt.needsInit)
      EXPECT_TRUE(stmt.innermostIsReduction());
  }
}

TEST(ReferenceScheduleTest, TripCounts) {
  const Compiled c = compile(test::kInverseHelmholtz);
  std::int64_t macTrips = 0;
  for (const auto& stmt : c.schedule.statements)
    if (stmt.kind == ir::OpKind::Contract)
      macTrips += stmt.tripCount();
  EXPECT_EQ(macTrips, 6LL * 11 * 11 * 11 * 11);
}

TEST(LayoutTest, DefaultRowMajorStrides) {
  const Compiled c = compile(test::kInverseHelmholtz);
  // The Hadamard statement reads D and t at identity maps; its innermost
  // loop has stride 1 under row-major layouts.
  for (const auto& stmt : c.schedule.statements) {
    if (stmt.kind != ir::OpKind::EntryWise)
      continue;
    const int innermost = static_cast<int>(stmt.loops.size()) - 1;
    for (const auto& read : stmt.reads)
      EXPECT_EQ(c.schedule.layouts.strideOf(read, innermost), 1);
  }
}

TEST(LayoutTest, ColumnMajorChangesStrides) {
  LayoutOptions options;
  options.perTensor["D"] = LayoutKind::ColumnMajor;
  const Compiled c = compile(test::kInverseHelmholtz, options);
  for (const auto& stmt : c.schedule.statements) {
    if (stmt.kind != ir::OpKind::EntryWise)
      continue;
    const int innermost = static_cast<int>(stmt.loops.size()) - 1;
    bool sawColumnMajor = false;
    for (const auto& read : stmt.reads)
      if (c.program->tensor(read.tensor).name == "D") {
        EXPECT_EQ(c.schedule.layouts.strideOf(read, innermost), 121);
        sawColumnMajor = true;
      }
    EXPECT_TRUE(sawColumnMajor);
  }
}

TEST(RescheduleTest, HardwareObjectiveRemovesInnermostReductions) {
  Compiled c = compile(test::kInverseHelmholtz);
  RescheduleOptions options;
  options.objective = ScheduleObjective::Hardware;
  const RescheduleStats stats = reschedule(c.schedule, options);
  EXPECT_GT(stats.loopNestsPermuted, 0);
  for (const auto& stmt : c.schedule.statements)
    if (stmt.kind == ir::OpKind::Contract && stmt.needsInit)
      EXPECT_FALSE(stmt.innermostIsReduction()) << stmt.name;
}

TEST(RescheduleTest, SoftwareObjectiveKeepsUnitStrides) {
  Compiled c = compile(test::kInverseHelmholtz);
  RescheduleOptions options;
  options.objective = ScheduleObjective::Software;
  reschedule(c.schedule, options);
  // The forward contractions and the Hadamard product reach unit strides
  // (cost <= 3); the transposed-S contractions of Eq. 1c cannot do better
  // than 12 under row-major layouts (S stride 11 + r stride 1), which is
  // still the minimum over all loop permutations.
  for (const auto& stmt : c.schedule.statements) {
    const std::int64_t cost = innermostStrideCost(c.schedule, stmt);
    EXPECT_LE(cost, 12) << stmt.name << " innermost stride cost " << cost;
  }
}

TEST(RescheduleTest, ReorderingRespectsDependences) {
  Compiled c = compile(test::kInverseHelmholtz);
  reschedule(c.schedule, {});
  // Producer statements must still precede consumers.
  std::map<ir::TensorId, int> position;
  for (std::size_t i = 0; i < c.schedule.statements.size(); ++i)
    position[c.schedule.statements[i].write.tensor] = static_cast<int>(i);
  for (std::size_t i = 0; i < c.schedule.statements.size(); ++i)
    for (const auto& read : c.schedule.statements[i].reads)
      if (const auto it = position.find(read.tensor); it != position.end())
        EXPECT_LT(it->second, static_cast<int>(i));
}

TEST(RescheduleTest, AccessesStayConsistentAfterPermutation) {
  Compiled c = compile(test::kMatMul2D);
  reschedule(c.schedule, {});
  const auto& stmt = c.schedule.statements[0];
  // Whatever the loop order, the composed write/read ranks must match.
  EXPECT_EQ(stmt.write.map.numResults(), 2);
  ASSERT_EQ(stmt.reads.size(), 2u);
  EXPECT_EQ(stmt.reads[0].map.numResults(), 2);
  EXPECT_EQ(stmt.reads[1].map.numResults(), 2);
  EXPECT_EQ(stmt.loops.size(), 3u);
}

TEST(ScheduleTest, PrintingContainsStatements) {
  const Compiled c = compile(test::kInverseHelmholtz);
  const std::string printed = c.schedule.str();
  EXPECT_NE(printed.find("S0"), std::string::npos);
  EXPECT_NE(printed.find("S6"), std::string::npos);
}

} // namespace
} // namespace cfd::sched
