#include "dsl/Parser.h"
#include "dsl/Sema.h"
#include "support/Error.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd::dsl {
namespace {

Program parseOk(const char* source) {
  Diagnostics diags;
  Parser parser(source, diags);
  Program program = parser.parseProgram();
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return program;
}

TEST(LexerTest, TokenizesFig1Statement) {
  Diagnostics diags;
  Lexer lexer("t = S # S # S # u . [[1 6] [3 7] [5 8]]", diags);
  const auto tokens = lexer.lexAll();
  EXPECT_FALSE(diags.hasErrors());
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[1].kind, TokenKind::Equal);
  EXPECT_EQ(tokens[3].kind, TokenKind::Hash);
  EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);
}

TEST(LexerTest, DotBeforeBracketIsContraction) {
  Diagnostics diags;
  Lexer lexer("u . [[0 1]] 2.5 1e3", diags);
  const auto tokens = lexer.lexAll();
  EXPECT_EQ(tokens[1].kind, TokenKind::Dot);
  bool sawFloat = false;
  for (const auto& token : tokens)
    if (token.kind == TokenKind::FloatLiteral) {
      sawFloat = true;
      EXPECT_TRUE(token.floatValue == 2.5 || token.floatValue == 1000.0);
    }
  EXPECT_TRUE(sawFloat);
}

TEST(LexerTest, CommentsAreSkipped) {
  Diagnostics diags;
  Lexer lexer("var x : [3] // trailing\n% full line\ny = x", diags);
  const auto tokens = lexer.lexAll();
  EXPECT_FALSE(diags.hasErrors());
  int identifiers = 0;
  for (const auto& token : tokens)
    if (token.kind == TokenKind::Identifier)
      ++identifiers;
  EXPECT_EQ(identifiers, 3); // x, y, x
}

TEST(LexerTest, TracksLocations) {
  Diagnostics diags;
  Lexer lexer("a\n  b", diags);
  const auto tokens = lexer.lexAll();
  EXPECT_EQ(tokens[0].location.line, 1);
  EXPECT_EQ(tokens[0].location.column, 1);
  EXPECT_EQ(tokens[1].location.line, 2);
  EXPECT_EQ(tokens[1].location.column, 3);
}

TEST(LexerTest, InvalidCharacterIsReported) {
  Diagnostics diags;
  Lexer lexer("a @ b", diags);
  lexer.lexAll();
  EXPECT_TRUE(diags.hasErrors());
}

TEST(ParserTest, ParsesFig1Program) {
  const Program program = parseOk(test::kInverseHelmholtz);
  ASSERT_EQ(program.declarations.size(), 6u);
  EXPECT_EQ(program.declarations[0].name, "S");
  EXPECT_EQ(program.declarations[0].kind, VarKind::Input);
  EXPECT_EQ(program.declarations[0].shape,
            (std::vector<std::int64_t>{11, 11}));
  EXPECT_EQ(program.declarations[3].kind, VarKind::Output);
  EXPECT_EQ(program.declarations[4].kind, VarKind::Local);
  ASSERT_EQ(program.assignments.size(), 3u);
  const Expr& first = *program.assignments[0].value;
  EXPECT_EQ(first.kind, ExprKind::Contraction);
  ASSERT_EQ(first.pairs.size(), 3u);
  EXPECT_EQ(first.pairs[0], (IndexPair{1, 6}));
  EXPECT_EQ(first.pairs[2], (IndexPair{5, 8}));
  EXPECT_EQ(first.operands[0]->kind, ExprKind::Product);
  EXPECT_EQ(first.operands[0]->operands.size(), 4u);
}

TEST(ParserTest, PrecedenceEntryWiseVsProduct) {
  // 'D * t' where t is a contraction: '*' binds looser than '#'/'.'.
  const Program program =
      parseOk("var input D : [2 2]\nvar input A : [2 3]\nvar input B : [3 2]\n"
              "var output r : [2 2]\nr = D * A # B . [[1 2]]");
  const Expr& value = *program.assignments[0].value;
  ASSERT_EQ(value.kind, ExprKind::Mul);
  EXPECT_EQ(value.operands[0]->kind, ExprKind::Ident);
  EXPECT_EQ(value.operands[1]->kind, ExprKind::Contraction);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const Program program =
      parseOk("var input a : [3]\nvar input b : [3]\nvar output c : [3]\n"
              "c = a * (a + b)");
  const Expr& value = *program.assignments[0].value;
  ASSERT_EQ(value.kind, ExprKind::Mul);
  EXPECT_EQ(value.operands[1]->kind, ExprKind::Add);
}

TEST(ParserTest, RoundTripPrinting) {
  const Program program = parseOk(test::kInverseHelmholtz);
  const std::string printed = printProgram(program);
  // Reparse the printed form; must match structurally.
  const Program reparsed = parseOk(printed.c_str());
  EXPECT_EQ(reparsed.declarations.size(), program.declarations.size());
  EXPECT_EQ(reparsed.assignments.size(), program.assignments.size());
  EXPECT_EQ(printProgram(reparsed), printed);
}

TEST(ParserTest, SyntaxErrorsAreRecoverable) {
  Diagnostics diags;
  Parser parser("var x : 3]\nvar input y : [4]\nz = y", diags);
  const Program program = parser.parseProgram();
  EXPECT_TRUE(diags.hasErrors());
  // Recovery still sees the later declaration.
  EXPECT_NE(program.findDecl("y"), nullptr);
}

TEST(ParserTest, NegativeExtentRejected) {
  Diagnostics diags;
  Parser parser("var x : [0]", diags);
  parser.parseProgram();
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, AcceptsFig1AndInfersShapes) {
  Program program = parseOk(test::kInverseHelmholtz);
  Diagnostics diags;
  EXPECT_TRUE(analyze(program, diags)) << diags.str();
  EXPECT_EQ(program.assignments[0].value->shape,
            (std::vector<std::int64_t>{11, 11, 11}));
  EXPECT_EQ(program.assignments[1].value->shape,
            (std::vector<std::int64_t>{11, 11, 11}));
}

TEST(SemaTest, UndeclaredVariable) {
  Program program = parseOk("var output y : [3]\ny = x");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("undeclared"), std::string::npos);
}

TEST(SemaTest, EntryWiseShapeMismatch) {
  Program program = parseOk(
      "var input a : [3]\nvar input b : [4]\nvar output c : [3]\nc = a + b");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("equal shapes"), std::string::npos);
}

TEST(SemaTest, ScalarBroadcastAllowed) {
  Program program = parseOk(
      "var input a : [3 3]\nvar output c : [3 3]\nc = a * 2 + 1");
  Diagnostics diags;
  EXPECT_TRUE(analyze(program, diags)) << diags.str();
}

TEST(SemaTest, ContractionPairExtentMismatch) {
  Program program = parseOk("var input A : [3 4]\nvar input B : [5 6]\n"
                            "var output C : [3 6]\nC = A # B . [[1 2]]");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("different extents"), std::string::npos);
}

TEST(SemaTest, ContractionDimOutOfRange) {
  Program program = parseOk("var input A : [3 4]\nvar input B : [4 5]\n"
                            "var output C : [3 5]\nC = A # B . [[1 9]]");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("out of range"), std::string::npos);
}

TEST(SemaTest, DuplicateContractionDim) {
  Program program = parseOk("var input A : [3 4]\nvar input B : [4 4]\n"
                            "var output C : [3]\nC = A # B . [[1 2] [1 3]]");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("more than once"), std::string::npos);
}

TEST(SemaTest, InputAssignmentRejected) {
  Program program =
      parseOk("var input a : [3]\nvar output b : [3]\na = b\nb = a");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("must not be assigned"), std::string::npos);
}

TEST(SemaTest, DoubleAssignmentRejected) {
  Program program = parseOk(
      "var input a : [3]\nvar output b : [3]\nb = a\nb = a");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("single-assignment"), std::string::npos);
}

TEST(SemaTest, UseBeforeDefinition) {
  Program program = parseOk(
      "var input a : [3]\nvar output b : [3]\nvar t : [3]\nb = t\nt = a");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("before it is defined"), std::string::npos);
}

TEST(SemaTest, UnassignedOutputRejected) {
  Program program = parseOk("var input a : [3]\nvar output b : [3]");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("never assigned"), std::string::npos);
}

TEST(SemaTest, AssignmentShapeMismatch) {
  Program program = parseOk("var input A : [3 4]\nvar input B : [4 5]\n"
                            "var output C : [9 9]\nC = A # B . [[1 2]]");
  Diagnostics diags;
  EXPECT_FALSE(analyze(program, diags));
  EXPECT_NE(diags.str().find("shape mismatch"), std::string::npos);
}

TEST(SemaTest, ParseAndCheckThrowsOnBadInput) {
  EXPECT_THROW(parseAndCheck("var output z : [3]\nz = q"), FlowError);
  EXPECT_NO_THROW(parseAndCheck(test::kInverseHelmholtz));
}

} // namespace
} // namespace cfd::dsl
