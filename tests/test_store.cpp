// Persistent artifact store (DESIGN.md §13): binary codec round-trips,
// cold-process prefix adoption through a shared disk store, GC eviction
// order, and the fault-injection contract — every corruption is a clean
// miss, never a crash.
#include "core/Pipeline.h"
#include "core/Session.h"
#include "store/ArtifactCodec.h"
#include "store/ArtifactStore.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace cfd {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty directory under the system temp root, removed when
/// the fixture goes away (each test gets its own store root).
class StoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("cfd_store_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

/// Compiles `source` fully and hands back the pipeline (the artifact
/// prefix plus its stage keys and normalized options).
std::unique_ptr<Pipeline> compileAll(const std::string& source,
                                     FlowOptions options = {}) {
  auto pipeline = std::make_unique<Pipeline>(source, std::move(options));
  pipeline->runAll();
  return pipeline;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- Codec round-trips ----

TEST(ArtifactCodecTest, EveryStageRoundTripsByteIdentically) {
  for (const char* source :
       {test::kInverseHelmholtz, test::kInterpolation}) {
    const auto pipeline = compileAll(source);
    for (int i = 0; i < kStageCount; ++i) {
      const Stage stage = static_cast<Stage>(i);
      const std::string payload =
          store::encodePrefix(stage, pipeline->artifacts());
      const StageArtifacts decoded =
          store::decodePrefix(stage, payload, pipeline->options());
      // Byte-identical re-serialization is the codec's round-trip
      // invariant: encode(decode(encode(P))) == encode(P).
      EXPECT_EQ(store::encodePrefix(stage, decoded), payload)
          << "stage " << i;
    }
  }
}

TEST(ArtifactCodecTest, DecodedArtifactsAreSemanticallyEqual) {
  const auto pipeline = compileAll(test::kInverseHelmholtz);
  const std::string payload =
      store::encodePrefix(Stage::SysGen, pipeline->artifacts());
  const StageArtifacts decoded =
      store::decodePrefix(Stage::SysGen, payload, pipeline->options());

  EXPECT_EQ(decoded.program->str(), pipeline->artifacts().program->str());
  EXPECT_EQ(decoded.optimized->program.str(),
            pipeline->artifacts().optimized->program.str());
  EXPECT_EQ(decoded.system->str(), pipeline->artifacts().system->str());
  // The decoded schedule's non-serialized members are re-derived: the
  // program pointer targets the *decoded* optimize artifact (never the
  // encoder's), and layouts are re-materialized from it.
  EXPECT_EQ(decoded.schedule->program, &decoded.optimized->program);
  EXPECT_EQ(decoded.referenceSchedule->program, &decoded.optimized->program);
  EXPECT_EQ(decoded.schedule->statements.size(),
            pipeline->artifacts().schedule->statements.size());
}

TEST(ArtifactCodecTest, TruncatedPayloadThrowsCodecError) {
  const auto pipeline = compileAll(test::kInverseHelmholtz);
  const std::string payload =
      store::encodePrefix(Stage::SysGen, pipeline->artifacts());
  EXPECT_THROW(store::decodePrefix(
                   Stage::SysGen,
                   std::string_view(payload).substr(0, payload.size() / 2),
                   pipeline->options()),
               store::CodecError);
  EXPECT_THROW(
      store::decodePrefix(Stage::SysGen, payload + "x", pipeline->options()),
      store::CodecError);
}

// ---- Store: publish, load, verification ----

TEST_F(StoreTest, PublishedEntryLoadsAndVerifies) {
  const auto pipeline = compileAll(test::kInverseHelmholtz);
  store::ArtifactStore store({root_});
  ASSERT_TRUE(store.enabled());

  const std::uint64_t key = pipeline->stageKey(Stage::SysGen);
  store.publish(key, Stage::SysGen, pipeline->artifacts(),
                pipeline->source(), pipeline->options());
  EXPECT_EQ(store.stats().publishes, 1);
  EXPECT_EQ(store.entryCount(), 1u);
  EXPECT_TRUE(fs::exists(store.entryPath(key)));

  const auto entry = store.load(key, Stage::SysGen, pipeline->source(),
                                pipeline->options());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->stage, Stage::SysGen);
  EXPECT_EQ(entry->source, pipeline->source());
  EXPECT_EQ(entry->artifacts.system->str(),
            pipeline->artifacts().system->str());
  EXPECT_GT(entry->approxBytes, 0u);
  EXPECT_EQ(store.stats().hits, 1);
}

TEST_F(StoreTest, AbsentKeyIsAMiss) {
  store::ArtifactStore store({root_});
  const auto pipeline = compileAll(test::kInterpolation);
  EXPECT_EQ(store.load(0xdeadbeefULL, Stage::Parse, pipeline->source(),
                       pipeline->options()),
            nullptr);
  EXPECT_EQ(store.stats().misses, 1);
  EXPECT_EQ(store.stats().verifyFailures, 0);
}

TEST_F(StoreTest, DifferentOptionsRejectTheEntry) {
  const auto pipeline = compileAll(test::kInverseHelmholtz);
  store::ArtifactStore store({root_});
  const std::uint64_t key = pipeline->stageKey(Stage::SysGen);
  store.publish(key, Stage::SysGen, pipeline->artifacts(),
                pipeline->source(), pipeline->options());

  // A same-key probe under different consumed options must fail the
  // fingerprint echo (keys are Merkle-derived, so this only happens on
  // a 64-bit collision — verification is the collision guard).
  FlowOptions other = pipeline->options();
  other.hls.clockMHz = other.hls.clockMHz + 100;
  EXPECT_EQ(store.load(key, Stage::SysGen, pipeline->source(), other),
            nullptr);
  EXPECT_EQ(store.stats().verifyFailures, 1);

  // Same for a different source text.
  EXPECT_EQ(store.load(key, Stage::SysGen, "var input x : [2]\n",
                       pipeline->options()),
            nullptr);
  EXPECT_EQ(store.stats().verifyFailures, 2);
}

TEST_F(StoreTest, UnusableRootDisablesTheStore) {
  // A root under a regular file cannot be created.
  const std::string file = root_ + "_file";
  writeFile(file, "not a directory");
  store::ArtifactStore store({file + "/sub"});
  EXPECT_FALSE(store.enabled());

  const auto pipeline = compileAll(test::kInterpolation);
  EXPECT_EQ(store.load(1, Stage::Parse, pipeline->source(),
                       pipeline->options()),
            nullptr);
  store.publish(1, Stage::Parse, pipeline->artifacts(), pipeline->source(),
                pipeline->options()); // must not throw
  EXPECT_EQ(store.stats().publishes, 0);
  fs::remove(file);
}

// ---- Cold-process prefix adoption through Session ----

TEST_F(StoreTest, ColdSessionAdoptsFullPrefixFromDisk) {
  std::string warmSystem;
  {
    Session warm(SessionOptions{.cacheDir = root_});
    auto result = warm.compile(CompileRequest(test::kInverseHelmholtz));
    ASSERT_TRUE(result);
    warmSystem = result->flow().systemDesign().str();
    const auto stats = warm.stats();
    EXPECT_TRUE(stats.artifactStoreEnabled);
    EXPECT_EQ(stats.artifactStore.publishes, kStageCount);
    EXPECT_EQ(stats.artifactStore.hits, 0);
  }

  // A brand-new Session — fresh in-memory caches, shared disk store —
  // must adopt the full parse..sysgen prefix: every stage is a cache
  // hit served by one disk load, and the artifacts are byte-identical.
  Session cold(SessionOptions{.cacheDir = root_});
  auto result = cold.compile(CompileRequest(test::kInverseHelmholtz));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->flow().systemDesign().str(), warmSystem);

  const auto stats = cold.stats();
  EXPECT_EQ(stats.artifactStore.hits, 1);
  EXPECT_EQ(stats.artifactStore.verifyFailures, 0);
  EXPECT_EQ(stats.stageCache.hits, kStageCount);
  EXPECT_EQ(stats.stageCache.misses, 0);
}

TEST_F(StoreTest, ColdSessionAdoptsSharedPrefixUnderChangedHlsOptions) {
  {
    Session warm(SessionOptions{.cacheDir = root_});
    ASSERT_TRUE(warm.compile(CompileRequest(test::kInverseHelmholtz)));
  }

  // Changing an HLS-only option invalidates the hls/sysgen keys but the
  // parse..memory-plan prefix (7 stages) is shared and must come from
  // disk.
  FlowOptions options;
  options.hls.clockMHz = 250;
  Session cold(SessionOptions{.cacheDir = root_});
  ASSERT_TRUE(cold.compile(
      CompileRequest(test::kInverseHelmholtz).options(options)));

  const auto stats = cold.stats();
  EXPECT_EQ(stats.artifactStore.hits, 1);
  EXPECT_EQ(stats.stageCache.hits,
            static_cast<int>(Stage::MemoryPlan) + 1);
  // Only hls and sysgen were recomputed (and published for the next
  // process).
  EXPECT_EQ(stats.stageCache.misses, 2);
  EXPECT_EQ(stats.artifactStore.publishes, 2);
}

// ---- GC: byte bound, mtime order, stale tmp sweeping ----

TEST_F(StoreTest, GcEvictsOldestMtimeFirstUntilUnderTheBound) {
  store::ArtifactStore store({root_, /*capacityBytes=*/0}); // unbounded
  std::vector<std::uint64_t> keys;
  std::vector<std::uintmax_t> sizes;
  for (int extent : {5, 6, 7, 8}) {
    const auto pipeline = compileAll(test::inverseHelmholtzSource(extent));
    const std::uint64_t key = pipeline->stageKey(Stage::SysGen);
    store.publish(key, Stage::SysGen, pipeline->artifacts(),
                  pipeline->source(), pipeline->options());
    keys.push_back(key);
    sizes.push_back(fs::file_size(store.entryPath(key)));
  }
  ASSERT_EQ(store.entryCount(), 4u);

  // Pin a strictly increasing mtime order (publish order, seconds
  // apart, so filesystem timestamp granularity cannot reorder them).
  const auto base = fs::file_time_type::clock::now();
  for (std::size_t i = 0; i < keys.size(); ++i)
    fs::last_write_time(store.entryPath(keys[i]),
                        base - std::chrono::seconds(60 - 10 * i));

  // Bound to exactly the two newest entries: the two oldest must go,
  // in mtime order, and the newest two must survive.
  store.setCapacityBytes(static_cast<std::size_t>(sizes[2] + sizes[3]));
  EXPECT_EQ(store.stats().evictions, 2);
  EXPECT_FALSE(fs::exists(store.entryPath(keys[0])));
  EXPECT_FALSE(fs::exists(store.entryPath(keys[1])));
  EXPECT_TRUE(fs::exists(store.entryPath(keys[2])));
  EXPECT_TRUE(fs::exists(store.entryPath(keys[3])));
  EXPECT_LE(store.diskBytes(), sizes[2] + sizes[3]);
}

TEST_F(StoreTest, GcSweepsStaleTmpFilesAndKeepsFreshOnes) {
  store::ArtifactStore store({root_});
  const std::string stale = root_ + "/0123456789abcdef.cfda.999.0.tmp";
  const std::string fresh = root_ + "/fedcba9876543210.cfda.999.1.tmp";
  writeFile(stale, "half-written entry from a crashed publisher");
  writeFile(fresh, "in-flight publish from a live process");
  fs::last_write_time(stale,
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(1));

  store.collectGarbage();
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
  EXPECT_EQ(store.stats().staleTmpRemoved, 1);
  EXPECT_EQ(store.stats().evictions, 0);
}

// ---- Fault injection: every corruption is a clean miss ----

class StoreFaultTest : public StoreTest {
protected:
  /// Publishes the full Inverse Helmholtz prefix and returns its key.
  std::uint64_t publishEntry(store::ArtifactStore& store) {
    pipeline_ = compileAll(test::kInverseHelmholtz);
    const std::uint64_t key = pipeline_->stageKey(Stage::SysGen);
    store.publish(key, Stage::SysGen, pipeline_->artifacts(),
                  pipeline_->source(), pipeline_->options());
    return key;
  }

  /// The corrupted entry must read as a verify-failure miss — and a
  /// fresh Session pointed at the same store must still compile.
  void expectCleanMiss(store::ArtifactStore& store, std::uint64_t key) {
    EXPECT_EQ(store.load(key, Stage::SysGen, pipeline_->source(),
                         pipeline_->options()),
              nullptr);
    EXPECT_EQ(store.stats().verifyFailures, 1);
    EXPECT_EQ(store.stats().hits, 0);

    Session session(SessionOptions{.cacheDir = root_});
    auto result =
        session.compile(CompileRequest(test::kInverseHelmholtz));
    ASSERT_TRUE(result);
    EXPECT_EQ(result->flow().systemDesign().str(),
              pipeline_->artifacts().system->str());
  }

  std::unique_ptr<Pipeline> pipeline_;
};

TEST_F(StoreFaultTest, TruncatedEntryIsACleanMiss) {
  store::ArtifactStore store({root_});
  const std::uint64_t key = publishEntry(store);
  fs::resize_file(store.entryPath(key),
                  fs::file_size(store.entryPath(key)) / 2);
  expectCleanMiss(store, key);
}

TEST_F(StoreFaultTest, FlippedPayloadByteIsACleanMiss) {
  store::ArtifactStore store({root_});
  const std::uint64_t key = publishEntry(store);
  std::string bytes = readFile(store.entryPath(key));
  bytes[bytes.size() - 16] ^= 0x40; // deep in the payload
  writeFile(store.entryPath(key), bytes);
  expectCleanMiss(store, key);
}

TEST_F(StoreFaultTest, BadFormatVersionIsACleanMiss) {
  store::ArtifactStore store({root_});
  const std::uint64_t key = publishEntry(store);
  std::string bytes = readFile(store.entryPath(key));
  bytes[4] = static_cast<char>(0xff); // version field follows the magic
  writeFile(store.entryPath(key), bytes);
  expectCleanMiss(store, key);
}

TEST_F(StoreFaultTest, GarbageEntryFileIsACleanMiss) {
  store::ArtifactStore store({root_});
  const std::uint64_t key = publishEntry(store);
  writeFile(store.entryPath(key), "these are not the bytes of an entry");
  expectCleanMiss(store, key);
}

TEST_F(StoreFaultTest, EmptyEntryFileIsACleanMiss) {
  store::ArtifactStore store({root_});
  const std::uint64_t key = publishEntry(store);
  writeFile(store.entryPath(key), "");
  expectCleanMiss(store, key);
}

TEST_F(StoreFaultTest, StaleTmpFromCrashedPublisherDoesNotBlockTheKey) {
  store::ArtifactStore store({root_});
  const auto pipeline = compileAll(test::kInverseHelmholtz);
  const std::uint64_t key = pipeline->stageKey(Stage::SysGen);
  // A crashed publisher left a half-written temp file for this key; it
  // is not the entry, so probes miss cleanly and a later publish of the
  // same key succeeds beside it.
  writeFile(store.entryPath(key) + ".4242.0.tmp", "half-written");
  EXPECT_EQ(store.load(key, Stage::SysGen, pipeline->source(),
                       pipeline->options()),
            nullptr);
  EXPECT_EQ(store.stats().misses, 1);

  store.publish(key, Stage::SysGen, pipeline->artifacts(),
                pipeline->source(), pipeline->options());
  EXPECT_NE(store.load(key, Stage::SysGen, pipeline->source(),
                       pipeline->options()),
            nullptr);
}

TEST_F(StoreFaultTest, RacingPublishersBothSucceed) {
  const auto pipeline = compileAll(test::kInverseHelmholtz);
  const std::uint64_t key = pipeline->stageKey(Stage::SysGen);

  // Two stores on one directory stand in for two processes: both
  // publish the same key concurrently; whoever's rename lands last
  // wins, and the survivor must verify (the contents are identical by
  // construction).
  store::ArtifactStore a({root_});
  store::ArtifactStore b({root_});
  std::thread ta([&] {
    for (int i = 0; i < 8; ++i) {
      a.publish(key, Stage::SysGen, pipeline->artifacts(),
                pipeline->source(), pipeline->options());
      fs::remove(a.entryPath(key)); // reopen the race
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < 8; ++i)
      b.publish(key, Stage::SysGen, pipeline->artifacts(),
                pipeline->source(), pipeline->options());
  });
  ta.join();
  tb.join();

  store::ArtifactStore verify({root_});
  verify.publish(key, Stage::SysGen, pipeline->artifacts(),
                 pipeline->source(), pipeline->options());
  const auto entry = verify.load(key, Stage::SysGen, pipeline->source(),
                                 pipeline->options());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->artifacts.system->str(),
            pipeline->artifacts().system->str());
  // No leftover temp files: every publish either renamed or cleaned up.
  for (const auto& item : fs::directory_iterator(root_))
    EXPECT_FALSE(item.path().string().ends_with(".tmp"))
        << item.path().string();
}

} // namespace
} // namespace cfd
