#include "core/Flow.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd::hls {
namespace {

Flow compileHelmholtz(FlowOptions options = {}) {
  return Flow::compile(test::kInverseHelmholtz, options);
}

TEST(HlsModelTest, KernelResourcesMatchPaperWithinTolerance) {
  // Paper §VI: 2,314 LUT, 2,999 FF, 15 DSP. The estimator is calibrated
  // once; assert it stays within 5%.
  const Flow flow = compileHelmholtz();
  const Resources& res = flow.kernelReport().resources;
  EXPECT_NEAR(res.lut, 2314, 2314 * 0.05);
  EXPECT_NEAR(res.ff, 2999, 2999 * 0.05);
  EXPECT_EQ(res.dsp, 15);
  EXPECT_EQ(res.bram36, 0); // decoupled: all arrays exported
}

TEST(HlsModelTest, RescheduledKernelReachesIIOne) {
  const Flow flow = compileHelmholtz();
  for (const auto& stmt : flow.kernelReport().statements)
    EXPECT_EQ(stmt.ii, 1) << stmt.name;
}

TEST(HlsModelTest, ReferenceScheduleLimitedByAdderRecurrence) {
  FlowOptions options;
  options.reschedule.permuteLoops = false;
  options.reschedule.reorderStatements = false;
  const Flow flow = compileHelmholtz(options);
  // Reduction innermost: II = double-adder latency on every contraction.
  int limited = 0;
  for (const auto& stmt : flow.kernelReport().statements)
    if (stmt.ii == kDAdd.latency)
      ++limited;
  EXPECT_EQ(limited, 6);
  // And the kernel is several times slower.
  const Flow fast = compileHelmholtz();
  EXPECT_GT(flow.kernelReport().totalCycles,
            3 * fast.kernelReport().totalCycles);
}

TEST(HlsModelTest, LatencyDominatedByMacTrips) {
  const Flow flow = compileHelmholtz();
  const std::int64_t macWork = 6LL * 11 * 11 * 11 * 11;
  const std::int64_t cycles = flow.kernelReport().totalCycles;
  // II=1 pipelining: total is the MAC trip count plus inits/overheads,
  // well under 15% above the floor.
  EXPECT_GT(cycles, macWork);
  EXPECT_LT(cycles, macWork + macWork / 6);
}

TEST(HlsModelTest, TimeUsMatchesClock) {
  const Flow flow = compileHelmholtz();
  const KernelReport& report = flow.kernelReport();
  EXPECT_NEAR(report.timeUs(),
              static_cast<double>(report.totalCycles) / 200.0, 1e-9);
}

TEST(HlsModelTest, DivisionAllocatesDivider) {
  const Flow flow = Flow::compile(test::kEntryWiseChain);
  const Resources& res = flow.kernelReport().resources;
  // The divider is LUT-based (0 DSP) and large.
  EXPECT_GT(res.lut, kDDiv.lut);
}

TEST(HlsModelTest, CopyOnlyKernelUsesNoFpu) {
  const Flow flow =
      Flow::compile("var input a : [8 8]\nvar output b : [8 8]\nb = a");
  const Resources& res = flow.kernelReport().resources;
  EXPECT_EQ(res.dsp, kIndexArithmeticDsp);
  EXPECT_LT(res.lut, 500);
}

TEST(HlsModelTest, NonDecoupledAddsInternalBram) {
  FlowOptions options;
  options.memory.decoupled = false;
  const Flow flow = compileHelmholtz(options);
  EXPECT_EQ(flow.kernelReport().resources.bram36, 24);
}

TEST(HlsModelTest, ReportPrinting) {
  const Flow flow = compileHelmholtz();
  const std::string report = flow.kernelReport().str();
  EXPECT_NE(report.find("II=1"), std::string::npos);
  EXPECT_NE(report.find("cycles"), std::string::npos);
}

// Property sweep: latency scales with p^4 for the Helmholtz kernel.
class LatencyScaling : public ::testing::TestWithParam<int> {};

TEST_P(LatencyScaling, CyclesTrackP4) {
  const int n = GetParam();
  const Flow flow = Flow::compile(test::inverseHelmholtzSource(n));
  const std::int64_t macWork = 6LL * n * n * n * n;
  const std::int64_t cycles = flow.kernelReport().totalCycles;
  EXPECT_GT(cycles, macWork);
  // For small extents the innermost trip cannot hide the PLM
  // read-modify-write recurrence, so II rises to ceil(rmwLatency / n).
  const std::int64_t rmwLatency =
      kBramReadLatency + kDAdd.latency + kBramWriteLatency;
  const std::int64_t ii = std::max<std::int64_t>(1, (rmwLatency + n - 1) / n);
  for (const auto& stmt : flow.kernelReport().statements)
    EXPECT_LE(stmt.ii, ii) << stmt.name;
  EXPECT_LT(cycles, ii * macWork + 7 * (n * n * n + 40));
}

INSTANTIATE_TEST_SUITE_P(Degrees, LatencyScaling,
                         ::testing::Values(3, 5, 7, 9, 11, 13));

} // namespace
} // namespace cfd::hls
