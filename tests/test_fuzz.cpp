// Randomized end-to-end property testing: generate structurally random
// CFDlang programs (entry-wise chains, products, binary and n-ary
// contractions over random shapes), push them through the complete flow
// under randomized options, and check the interpreted hardware schedule
// against the direct reference semantics.
//
// Any bug in shape inference, contraction splitting, operand maps,
// layout materialization, rescheduling, or sharing shows up here as a
// numeric mismatch.
#include "core/Flow.h"
#include "core/Session.h"
#include "mem/Dataflow.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace cfd {
namespace {

class ProgramFuzzer {
public:
  explicit ProgramFuzzer(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream src;
    // Random input tensors.
    const int numInputs = pick(2, 4);
    for (int i = 0; i < numInputs; ++i) {
      const std::string name = "in" + std::to_string(i);
      const auto shape = randomShape();
      src << "var input " << name << " : " << shapeText(shape) << "\n";
      tensors_.push_back({name, shape});
    }
    // Random derived statements on locals.
    const int numLocals = pick(1, 3);
    std::vector<std::string> statements;
    for (int i = 0; i < numLocals; ++i) {
      const std::string name = "w" + std::to_string(i);
      const auto [expr, shape] = randomExpr();
      statements.push_back(name + " = " + expr);
      src << "var " << name << " : " << shapeText(shape) << "\n";
      tensors_.push_back({name, shape});
    }
    // One output consuming the last local (guarantees everything chains).
    const auto [expr, shape] = randomExpr();
    src << "var output out : " << shapeText(shape) << "\n";
    for (const auto& statement : statements)
      src << statement << "\n";
    src << "out = " << expr << "\n";
    return src.str();
  }

private:
  struct NamedTensor {
    std::string name;
    std::vector<std::int64_t> shape;
  };

  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  std::vector<std::int64_t> randomShape() {
    const int rank = pick(1, 3);
    std::vector<std::int64_t> shape;
    for (int d = 0; d < rank; ++d)
      shape.push_back(pick(2, 5));
    return shape;
  }

  static std::string shapeText(const std::vector<std::int64_t>& shape) {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < shape.size(); ++i)
      os << (i ? " " : "") << shape[i];
    os << "]";
    return os.str();
  }

  const NamedTensor& randomTensor() {
    return tensors_[static_cast<std::size_t>(
        pick(0, static_cast<int>(tensors_.size()) - 1))];
  }

  /// Returns (expression text, shape).
  std::pair<std::string, std::vector<std::int64_t>> randomExpr() {
    switch (pick(0, 2)) {
    case 0:
      return randomEntryWise();
    case 1:
      return randomContraction(2);
    default:
      return randomContraction(3);
    }
  }

  std::pair<std::string, std::vector<std::int64_t>> randomEntryWise() {
    const NamedTensor& a = randomTensor();
    // Find a same-shaped partner (fall back to scalar arithmetic).
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NamedTensor& b = randomTensor();
      if (b.shape == a.shape && b.name != a.name) {
        const char* ops[] = {"+", "-", "*"};
        return {"(" + a.name + " " + ops[pick(0, 2)] + " " + b.name + ")",
                a.shape};
      }
    }
    return {"(" + a.name + " * 2 + 1)", a.shape};
  }

  std::pair<std::string, std::vector<std::int64_t>>
  randomContraction(int factors) {
    // Choose factor tensors (rank-capped so the reference evaluation of
    // the product space stays tractable), then contract random
    // cross-factor dim pairs with matching extents.
    std::vector<const NamedTensor*> chosen;
    for (int f = 0; f < factors; ++f) {
      const NamedTensor* candidate = &randomTensor();
      for (int attempt = 0;
           attempt < 8 && candidate->shape.size() > 2; ++attempt)
        candidate = &randomTensor();
      if (candidate->shape.size() > 3)
        return randomEntryWise();
      chosen.push_back(candidate);
    }
    std::vector<std::int64_t> productShape;
    std::vector<int> owner;
    for (int f = 0; f < factors; ++f)
      for (std::int64_t extent : chosen[static_cast<std::size_t>(f)]->shape) {
        productShape.push_back(extent);
        owner.push_back(f);
      }
    // Collect candidate pairs (cross-factor, equal extent).
    std::vector<std::pair<int, int>> candidates;
    for (std::size_t i = 0; i < productShape.size(); ++i)
      for (std::size_t j = i + 1; j < productShape.size(); ++j)
        if (owner[i] != owner[j] && productShape[i] == productShape[j])
          candidates.emplace_back(static_cast<int>(i),
                                  static_cast<int>(j));
    std::shuffle(candidates.begin(), candidates.end(), rng_);
    std::vector<std::pair<int, int>> pairs;
    std::vector<bool> used(productShape.size(), false);
    const int wanted = pick(1, 2);
    for (const auto& [i, j] : candidates) {
      if (static_cast<int>(pairs.size()) == wanted)
        break;
      if (used[static_cast<std::size_t>(i)] ||
          used[static_cast<std::size_t>(j)])
        continue;
      pairs.emplace_back(i, j);
      used[static_cast<std::size_t>(i)] = true;
      used[static_cast<std::size_t>(j)] = true;
    }
    if (pairs.empty()) {
      // No valid contraction: plain outer product, but keep results
      // small enough for downstream statements.
      if (productShape.size() > 4)
        return randomEntryWise();
      std::ostringstream expr;
      for (int f = 0; f < factors; ++f)
        expr << (f ? " # " : "") << chosen[static_cast<std::size_t>(f)]->name;
      return {expr.str(), productShape};
    }
    std::ostringstream expr;
    for (int f = 0; f < factors; ++f)
      expr << (f ? " # " : "") << chosen[static_cast<std::size_t>(f)]->name;
    expr << " . [";
    for (const auto& [i, j] : pairs)
      expr << "[" << i << " " << j << "]";
    expr << "]";
    std::vector<std::int64_t> shape;
    for (std::size_t d = 0; d < productShape.size(); ++d)
      if (!used[d])
        shape.push_back(productShape[d]);
    // Keep derived tensors small so later statements (and the PLM
    // sizing) stay tractable.
    if (shape.size() > 4)
      return randomEntryWise();
    return {expr.str(), shape};
  }

  std::mt19937_64 rng_;
  std::vector<NamedTensor> tensors_;
};

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, RandomProgramValidates) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  ProgramFuzzer fuzzer(seed);
  const std::string source = fuzzer.generate();
  SCOPED_TRACE("program:\n" + source);

  // Randomize flow options from the same seed.
  std::mt19937_64 rng(seed * 7919);
  FlowOptions options;
  options.reschedule.objective = (rng() & 1)
                                     ? sched::ScheduleObjective::Hardware
                                     : sched::ScheduleObjective::Software;
  options.memory.enableSharing = (rng() & 2) != 0;
  options.layouts.defaultLayout = (rng() & 4)
                                      ? sched::LayoutKind::RowMajor
                                      : sched::LayoutKind::ColumnMajor;
  options.system.memories = 1;
  options.system.kernels = 1;

  const Flow flow = Flow::compile(source, options);
  EXPECT_LE(flow.validate(seed + 1), 1e-9);
  // The schedule must always be legal.
  EXPECT_EQ(mem::verifySchedule(flow.schedule()), "");
  // Memory plan must cover every tensor.
  for (const auto& tensor : flow.program().tensors())
    EXPECT_GE(flow.memoryPlan().bufferIndexOf(tensor.id), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(1, 33));

// Randomized interleavings of the job-queue state machine (DESIGN.md
// §11): submit / cancel / wait / poll in a seed-reproducible order
// against one session, then assert the invariants that must hold for
// EVERY interleaving — each handle resolves to a legal terminal state
// with a result matching that state, and the session counters balance.
class FuzzJobQueue : public ::testing::TestWithParam<int> {};

TEST_P(FuzzJobQueue, RandomSubmitCancelWaitInterleavingStaysConsistent) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull);
  const auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  Session session(SessionOptions{.workers = 2});
  // A fixed palette of sources/options keeps compiles cheap (cache
  // reuse) while still mixing distinct pipeline shapes — including a
  // malformed source, so cancellations race ordinary failures too.
  const std::string sources[] = {
      "var input A : [4 4]\nvar input B : [4 4]\nvar output C : [4 4]\n"
      "C = A # B . [[1 2]]\n",
      "var input A : [3 3]\nvar output B : [3 3]\nB = (A * 2 + 1)\n",
      "this is not a program\n",
  };
  std::vector<Job<CompileResult>> jobs;
  int cancelsIssued = 0;
  for (int step = 0; step < 120; ++step) {
    switch (pick(0, 9)) {
    case 0:
    case 1:
    case 2:
    case 3:
    case 4: { // submit (half the operations keep the queue busy)
      CompileRequest request(sources[pick(0, 2)]);
      FlowOptions options;
      options.hls.unrollFactor = 1 << pick(0, 2);
      options.memory.enableSharing = pick(0, 1) == 1;
      request.options(options);
      JobConfig config;
      config.priority = static_cast<JobPriority>(pick(0, 2));
      if (pick(0, 7) == 0)
        config.deadlineMillis = pick(1, 3); // occasionally tight
      jobs.push_back(session.submitCompile(std::move(request), config));
      break;
    }
    case 5:
    case 6: { // cancel a random live handle
      if (jobs.empty())
        break;
      if (jobs[static_cast<std::size_t>(
                   pick(0, static_cast<int>(jobs.size()) - 1))]
              .cancel())
        ++cancelsIssued;
      break;
    }
    case 7: { // wait on a random handle (blocking join mid-stream)
      if (jobs.empty())
        break;
      const auto& job = jobs[static_cast<std::size_t>(
          pick(0, static_cast<int>(jobs.size()) - 1))];
      job.wait();
      EXPECT_TRUE(job.poll());
      break;
    }
    default: { // poll/state are always safe, resolved or not
      if (jobs.empty())
        break;
      const auto& job = jobs[static_cast<std::size_t>(
          pick(0, static_cast<int>(jobs.size()) - 1))];
      const JobState state = job.state();
      if (job.poll())
        EXPECT_TRUE(state == JobState::Done ||
                    state == JobState::Cancelled);
      break;
    }
    }
  }
  session.drainJobs();

  std::int64_t done = 0;
  std::int64_t cancelled = 0;
  for (const Job<CompileResult>& job : jobs) {
    ASSERT_TRUE(job.poll());
    const Expected<CompileResult>& result = job.wait();
    if (job.state() == JobState::Done) {
      // Done covers both outcomes of work that ran to completion: a
      // success, or an ordinary failure with its own diagnostics (the
      // malformed palette entry parse-fails here).
      ++done;
      if (!result.ok())
        ASSERT_GE(result.diagnostics().size(), 1u) << "empty failure";
    } else {
      // Cancelled ALWAYS carries the job-queue diagnostic — even when
      // the cancellation raced work that produced its own failure.
      ASSERT_EQ(job.state(), JobState::Cancelled);
      ++cancelled;
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.diagnostics()[0].stage, "job-queue");
    }
  }
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.jobsSubmitted, static_cast<std::int64_t>(jobs.size()));
  EXPECT_EQ(stats.jobsCompleted, done);
  EXPECT_EQ(stats.jobsCancelled, cancelled);
  EXPECT_EQ(stats.jobQueueDepth, 0);
  EXPECT_EQ(stats.jobsRunning, 0);
  // cancelsIssued only documents that the run exercised cancellation;
  // it is no bound on `cancelled` (deadline expiries cancel too) nor a
  // floor (a cancel accepted against a Running job may lose the race).
  (void)cancelsIssued;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzJobQueue, ::testing::Range(1, 9));

} // namespace
} // namespace cfd
