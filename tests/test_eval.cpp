#include "dsl/Parser.h"
#include "eval/Evaluator.h"
#include "ir/Lowering.h"
#include "sched/Reschedule.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <memory>

namespace cfd::eval {
namespace {

constexpr double kTolerance = 1e-9;

struct Pipeline {
  dsl::Program ast;
  std::unique_ptr<ir::Program> program;
  sched::Schedule schedule;
};

Pipeline build(const std::string& source,
               sched::LayoutOptions layoutOptions = {}) {
  Pipeline p;
  p.ast = dsl::parseAndCheck(source);
  p.program =
      std::make_unique<ir::Program>(ir::lower(p.ast));
  p.schedule = sched::buildReferenceSchedule(*p.program, layoutOptions);
  return p;
}

/// Runs the interpreter on `schedule` against the reference evaluation of
/// the AST and returns the max output error.
double compareAgainstReference(const Pipeline& p) {
  std::map<std::string, DenseTensor> reference;
  TensorStore store(*p.program, p.schedule.layouts);
  std::uint64_t seed = 1;
  for (const auto& tensor : p.program->tensors()) {
    if (tensor.kind != ir::TensorKind::Input)
      continue;
    const DenseTensor value = makeTestInput(tensor.type.shape, seed++);
    reference[tensor.name] = value;
    store.import(tensor.id, value);
  }
  evaluateReference(p.ast, reference);
  execute(p.schedule, store);
  double maxError = 0.0;
  for (const auto& tensor : p.program->tensors()) {
    if (tensor.kind != ir::TensorKind::Output)
      continue;
    const DenseTensor actual = store.exportTensor(tensor.id);
    maxError = std::max(
        maxError, maxAbsDifference(actual, reference.at(tensor.name)));
  }
  return maxError;
}

TEST(EvaluatorTest, MatMulMatchesReference) {
  EXPECT_LE(compareAgainstReference(build(test::kMatMul2D)), kTolerance);
}

TEST(EvaluatorTest, MatMulExactSmallCase) {
  // 2x2 known result.
  Pipeline p = build("var input A : [2 2]\nvar input B : [2 2]\n"
                     "var output C : [2 2]\nC = A # B . [[1 2]]");
  TensorStore store(*p.program, p.schedule.layouts);
  DenseTensor a = DenseTensor::zeros({2, 2});
  a.data = {1, 2, 3, 4};
  DenseTensor b = DenseTensor::zeros({2, 2});
  b.data = {5, 6, 7, 8};
  store.import(p.program->findTensor("A")->id, a);
  store.import(p.program->findTensor("B")->id, b);
  execute(p.schedule, store);
  const DenseTensor c = store.exportTensor(p.program->findTensor("C")->id);
  EXPECT_DOUBLE_EQ(c.data[0], 19);
  EXPECT_DOUBLE_EQ(c.data[1], 22);
  EXPECT_DOUBLE_EQ(c.data[2], 43);
  EXPECT_DOUBLE_EQ(c.data[3], 50);
}

TEST(EvaluatorTest, InverseHelmholtzMatchesReference) {
  // p = 5 keeps the O(p^6) reference evaluation fast.
  EXPECT_LE(compareAgainstReference(build(test::inverseHelmholtzSource(5))),
            kTolerance);
}

TEST(EvaluatorTest, InverseHelmholtzPaperSize) {
  EXPECT_LE(compareAgainstReference(build(test::kInverseHelmholtz)),
            1e-8);
}

TEST(EvaluatorTest, InterpolationMatchesReference) {
  EXPECT_LE(compareAgainstReference(build(test::kInterpolation)),
            kTolerance);
}

TEST(EvaluatorTest, EntryWiseChainMatchesReference) {
  EXPECT_LE(compareAgainstReference(build(test::kEntryWiseChain)),
            kTolerance);
}

TEST(EvaluatorTest, RescheduledHardwareVariantMatches) {
  Pipeline p = build(test::kInverseHelmholtz);
  sched::RescheduleOptions options;
  options.objective = sched::ScheduleObjective::Hardware;
  sched::reschedule(p.schedule, options);
  EXPECT_LE(compareAgainstReference(p), 1e-8);
}

TEST(EvaluatorTest, RescheduledSoftwareVariantMatches) {
  Pipeline p = build(test::kInverseHelmholtz);
  sched::RescheduleOptions options;
  options.objective = sched::ScheduleObjective::Software;
  sched::reschedule(p.schedule, options);
  EXPECT_LE(compareAgainstReference(p), 1e-8);
}

TEST(EvaluatorTest, ColumnMajorLayoutMatches) {
  sched::LayoutOptions layouts;
  layouts.defaultLayout = sched::LayoutKind::ColumnMajor;
  EXPECT_LE(compareAgainstReference(
                build(test::inverseHelmholtzSource(5), layouts)),
            kTolerance);
}

TEST(EvaluatorTest, MixedLayoutsMatch) {
  sched::LayoutOptions layouts;
  layouts.perTensor["u"] = sched::LayoutKind::ColumnMajor;
  layouts.perTensor["v"] = sched::LayoutKind::ColumnMajor;
  EXPECT_LE(compareAgainstReference(
                build(test::inverseHelmholtzSource(5), layouts)),
            kTolerance);
}

TEST(EvaluatorTest, OpCountsMatchStaticWork) {
  Pipeline p = build(test::kInverseHelmholtz);
  TensorStore store(*p.program, p.schedule.layouts);
  for (const auto& tensor : p.program->tensors())
    if (tensor.kind == ir::TensorKind::Input)
      store.import(tensor.id, makeTestInput(tensor.type.shape, 7));
  const OpCounts counts = execute(p.schedule, store);
  const std::int64_t p4 = 11LL * 11 * 11 * 11;
  EXPECT_EQ(counts.fmul, 6 * p4 + 1331);
  EXPECT_EQ(counts.fadd, 6 * p4);
  EXPECT_EQ(counts.statements, 7);
  EXPECT_EQ(counts.loopIterations, 6 * p4 + 1331);
}

TEST(EvaluatorTest, RegisterAccumulationReducesStores) {
  // Reference schedule (reduction innermost) stores once per output
  // element; the hardware schedule read-modify-writes per iteration.
  Pipeline ref = build(test::kMatMul2D);
  Pipeline hw = build(test::kMatMul2D);
  sched::reschedule(hw.schedule, {});
  TensorStore refStore(*ref.program, ref.schedule.layouts);
  TensorStore hwStore(*hw.program, hw.schedule.layouts);
  for (const auto& tensor : ref.program->tensors())
    if (tensor.kind == ir::TensorKind::Input) {
      refStore.import(tensor.id, makeTestInput(tensor.type.shape, 3));
      hwStore.import(
          hw.program->findTensor(tensor.name)->id,
          makeTestInput(tensor.type.shape, 3));
    }
  const OpCounts refCounts = execute(ref.schedule, refStore);
  const OpCounts hwCounts = execute(hw.schedule, hwStore);
  EXPECT_LT(refCounts.stores, hwCounts.stores);
  // Both compute the same result.
  EXPECT_LE(maxAbsDifference(
                refStore.exportTensor(ref.program->findTensor("C")->id),
                hwStore.exportTensor(hw.program->findTensor("C")->id)),
            kTolerance);
}

TEST(TensorStoreTest, ImportExportRoundTrip) {
  Pipeline p = build(test::kMatMul2D);
  TensorStore store(*p.program, p.schedule.layouts);
  const DenseTensor value = makeTestInput({4, 5}, 99);
  const ir::TensorId id = p.program->findTensor("A")->id;
  store.import(id, value);
  EXPECT_EQ(maxAbsDifference(store.exportTensor(id), value), 0.0);
}

TEST(TensorStoreTest, OutOfBoundsAccessThrows) {
  Pipeline p = build(test::kMatMul2D);
  TensorStore store(*p.program, p.schedule.layouts);
  const ir::TensorId id = p.program->findTensor("A")->id;
  EXPECT_THROW(store.load(id, 20), InternalError);
  EXPECT_THROW(store.store(id, -1, 0.0), InternalError);
}

TEST(MakeTestInputTest, DeterministicAndBounded) {
  const DenseTensor a = makeTestInput({11, 11}, 42);
  const DenseTensor b = makeTestInput({11, 11}, 42);
  const DenseTensor c = makeTestInput({11, 11}, 43);
  EXPECT_EQ(maxAbsDifference(a, b), 0.0);
  EXPECT_GT(maxAbsDifference(a, c), 0.0);
  for (double v : a.data) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

} // namespace
} // namespace cfd::eval
