#include "core/Flow.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd {
namespace {

TEST(FlowTest, CompilesFig1EndToEnd) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  EXPECT_EQ(flow.program().tensors().size(), 10u);
  EXPECT_EQ(flow.schedule().statements.size(), 7u);
  EXPECT_EQ(flow.systemDesign().m, 16);
  EXPECT_LE(flow.validate(), 1e-8);
}

TEST(FlowTest, NineLinesOfDslProduceTheWholeSystem) {
  // The paper's closing point: "all results have been achieved by
  // writing only 9 lines of DSL". Count the non-empty source lines and
  // check every artifact materializes.
  int lines = 0;
  std::istringstream source(test::kInverseHelmholtz);
  std::string line;
  while (std::getline(source, line))
    if (!line.empty())
      ++lines;
  EXPECT_EQ(lines, 9);

  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  EXPECT_FALSE(flow.cCode().empty());
  EXPECT_FALSE(flow.mnemosyneConfig().empty());
  EXPECT_FALSE(flow.hostCode().empty());
  EXPECT_FALSE(flow.compatibilityDot().empty());
}

TEST(FlowTest, InvalidSourceThrows) {
  EXPECT_THROW(Flow::compile("var output v : [3]\nv = missing"),
               FlowError);
  EXPECT_THROW(Flow::compile("not a program"), FlowError);
}

TEST(FlowTest, ValidateIsDeterministicPerSeed) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  EXPECT_EQ(flow.validate(7), flow.validate(7));
}

TEST(FlowTest, SoftwareCountsDifferByObjective) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  const eval::OpCounts sw =
      flow.softwareCounts(sched::ScheduleObjective::Software);
  const eval::OpCounts hw =
      flow.softwareCounts(sched::ScheduleObjective::Hardware);
  // Same arithmetic, different memory traffic.
  EXPECT_EQ(sw.fmul, hw.fmul);
  EXPECT_EQ(sw.fadd, hw.fadd);
  EXPECT_LT(sw.stores, hw.stores);
}

TEST(FlowTest, OptionsReachAllStages) {
  FlowOptions options;
  options.memory.enableSharing = false;
  options.system.memories = 4;
  options.system.kernels = 4;
  options.emitter.functionName = "my_kernel";
  const Flow flow = Flow::compile(test::kInverseHelmholtz, options);
  EXPECT_EQ(flow.systemDesign().m, 4);
  EXPECT_EQ(flow.memoryPlan().buffers.size(), 10u);
  EXPECT_NE(flow.kernelPrototype().find("my_kernel"), std::string::npos);
}

TEST(FlowTest, WorksForInterpolationOperator) {
  const Flow flow = Flow::compile(test::kInterpolation);
  EXPECT_LE(flow.validate(), 1e-9);
  EXPECT_GE(flow.systemDesign().m, 8);
  // Rectangular factor: output PLM is 13^3.
  const ir::Tensor* v = flow.program().findTensor("v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->type.numElements(), 13 * 13 * 13);
}

TEST(FlowTest, EntryWiseProgramCompiles) {
  const Flow flow = Flow::compile(test::kEntryWiseChain);
  EXPECT_LE(flow.validate(), 1e-9);
  EXPECT_GE(flow.systemDesign().m, 1);
}

// Paper headline regression (abstract): memory sharing doubles the
// number of parallel kernels and lifts the ARM speedup from ~7x (in
// Fig. 9 terms) to ~12.6x total.
TEST(FlowTest, HeadlineResultReproduces) {
  FlowOptions noSharing;
  noSharing.memory.enableSharing = false;
  const Flow without = Flow::compile(test::kInverseHelmholtz, noSharing);
  const Flow with = Flow::compile(test::kInverseHelmholtz);
  EXPECT_EQ(without.systemDesign().m * 2, with.systemDesign().m);

  const auto base = Flow::compile(test::kInverseHelmholtz,
                                  [] {
                                    FlowOptions o;
                                    o.system.memories = 1;
                                    o.system.kernels = 1;
                                    return o;
                                  }())
                        .simulate({.numElements = 50000});
  const auto best = with.simulate({.numElements = 50000});
  const double totalSpeedup = base.totalTimeUs() / best.totalTimeUs();
  EXPECT_NEAR(totalSpeedup, 12.58, 12.58 * 0.05);
}

} // namespace
} // namespace cfd
