// Golden-artifact tests: exact snapshots of the generated artifacts for
// a small fixed kernel. These pin down the emitter contracts (C99
// shape, Mnemosyne config format, host protocol constants); any
// intentional change must update the goldens.
#include "core/Flow.h"

#include <gtest/gtest.h>

namespace cfd {
namespace {

constexpr const char* kTinyMatMul = R"(
var input  A : [2 3]
var input  B : [3 2]
var output C : [2 2]
C = A # B . [[1 2]]
)";

Flow compileTiny() {
  FlowOptions options;
  options.system.memories = 1;
  options.system.kernels = 1;
  return Flow::compile(kTinyMatMul, options);
}

TEST(GoldenTest, TensorIRDump) {
  const Flow flow = compileTiny();
  EXPECT_EQ(flow.program().str(),
            "input A : [2 3]\n"
            "input B : [3 2]\n"
            "output C : [2 2]\n"
            "C = contract(A, B, pairs={(1,0)})\n");
}

TEST(GoldenTest, KernelPrototype) {
  const Flow flow = compileTiny();
  EXPECT_EQ(flow.kernelPrototype(),
            "void kernel_body(const double A[restrict static 6], "
            "const double B[restrict static 6], "
            "double C[restrict static 4])");
}

TEST(GoldenTest, GeneratedCContainsExactLoopNest) {
  const Flow flow = compileTiny();
  const std::string code = flow.cCode();
  // Hardware objective: k (the reduction) is not innermost; the
  // accumulation goes through the target array.
  EXPECT_NE(code.find("C[2*i0 + i2] += A[3*i0 + i1] * B[2*i1 + i2];"),
            std::string::npos)
      << code;
  // Zero-init loop precedes it.
  EXPECT_NE(code.find("C[2*i0 + i1] = 0.0;"), std::string::npos) << code;
}

TEST(GoldenTest, MnemosyneConfigSnapshot) {
  const Flow flow = compileTiny();
  const std::string config = flow.mnemosyneConfig();
  EXPECT_NE(config.find("A depth=6 width=64 kind=input live=[-1,0]"),
            std::string::npos)
      << config;
  EXPECT_NE(config.find("C depth=4 width=64 kind=output live=[0,1]"),
            std::string::npos)
      << config;
  EXPECT_NE(config.find("S0 writes C reads A B rmw"), std::string::npos)
      << config;
}

TEST(GoldenTest, HostCodeProtocolConstants) {
  const Flow flow = compileTiny();
  const std::string host = flow.hostCode();
  EXPECT_NE(host.find("#define CFD_M 1"), std::string::npos);
  // Windows: A 64 B (48 padded), B 64 B, C 32 B -> 160 B -> 0x100.
  EXPECT_NE(host.find("#define CFD_PLM_WINDOW 0x100"), std::string::npos)
      << host;
}

TEST(GoldenTest, CompatibilityDotSnapshot) {
  const Flow flow = compileTiny();
  const std::string dot = flow.compatibilityDot();
  // The single MAC statement reads A, B and (read-modify-write) C, so
  // no pair is interface compatible and none is lifetime-disjoint.
  EXPECT_EQ(dot,
            "graph compatibility {\n"
            "  A [shape=box];\n"
            "  B [shape=box];\n"
            "  C [shape=box];\n"
            "}\n");
}

TEST(GoldenTest, UnaryMinusParsesAndEvaluates) {
  const Flow flow = Flow::compile(
      "var input a : [4]\nvar output b : [4]\nb = -a * 2 + a");
  EXPECT_LE(flow.validate(), 1e-12);
}

} // namespace
} // namespace cfd
