// Tests for the asynchronous job layer of cfd::Session (DESIGN.md
// §11): future resolution, cancel-before-start vs cancel-mid-pipeline,
// deterministic priority ordering under a 1-worker pool, deadline
// expiry as a DiagnosticList entry, batch coalescing, and clean drain
// on destruction while jobs are pending (the TSan CI job runs this
// suite).
#include "core/Session.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

namespace cfd {
namespace {

/// Occupies every pool worker until release() is called, so jobs
/// submitted meanwhile stay deterministically queued. Posted at High
/// priority, so the worker picks it before anything the test submits.
class PoolBlocker {
public:
  PoolBlocker(Session& session, int workers = 1)
      : gate_(release_.get_future().share()) {
    for (int i = 0; i < workers; ++i)
      session.workerPool().post(
          [this] {
            ++running_;
            gate_.wait();
          },
          WorkerPool::kPriorityHigh);
    while (running_.load() < workers)
      std::this_thread::yield();
  }
  ~PoolBlocker() { release(); }

  void release() {
    if (!released_) {
      released_ = true;
      release_.set_value();
    }
  }

private:
  std::promise<void> release_;
  std::shared_future<void> gate_;
  std::atomic<int> running_{0};
  bool released_ = false;
};

TEST(AsyncJobTest, FutureResolvesToTheSynchronousResult) {
  Session session;
  const Expected<CompileResult> sync =
      session.compile(CompileRequest(test::kInverseHelmholtz));
  ASSERT_TRUE(sync.ok()) << sync.errorText();

  Job<CompileResult> job =
      session.submitCompile(CompileRequest(test::kInverseHelmholtz));
  ASSERT_TRUE(job.valid());
  EXPECT_EQ(job.priority(), JobPriority::Normal);
  const Expected<CompileResult>& result = job.wait();
  EXPECT_TRUE(job.poll());
  EXPECT_EQ(job.state(), JobState::Done);
  ASSERT_TRUE(result.ok()) << result.errorText();
  // Same immutable flow underneath: the job compiled through the same
  // session cache the synchronous request populated.
  EXPECT_TRUE(result->cacheHit());
  EXPECT_EQ(result->sharedFlow().get(), sync->sharedFlow().get());

  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.jobsSubmitted, 1);
  EXPECT_EQ(stats.jobsCompleted, 1);
  EXPECT_EQ(stats.jobsCancelled, 0);
  EXPECT_EQ(stats.jobQueueDepth, 0);
}

TEST(AsyncJobTest, CompileFailureResolvesAsDoneWithDiagnostics) {
  Session session;
  Job<CompileResult> job =
      session.submitCompile(CompileRequest("not a program"));
  const Expected<CompileResult>& result = job.wait();
  // An ordinary compile failure is a COMPLETED job (state Done): the
  // work ran and produced its structured answer. Cancelled is reserved
  // for cancel()/deadline/teardown.
  EXPECT_EQ(job.state(), JobState::Done);
  ASSERT_FALSE(result.ok());
  bool sawParseError = false;
  for (const Diagnostic& diagnostic : result.diagnostics())
    if (diagnostic.severity == Severity::Error &&
        diagnostic.stage == "parse")
      sawParseError = true;
  EXPECT_TRUE(sawParseError) << result.errorText();
  EXPECT_EQ(session.stats().jobsCompleted, 1);
}

TEST(AsyncJobTest, CancelBeforeStartResolvesImmediately) {
  Session session(SessionOptions{.workers = 1});
  PoolBlocker blocker(session);

  Job<CompileResult> job =
      session.submitCompile(CompileRequest(test::kMatMul2D));
  EXPECT_EQ(job.state(), JobState::Queued);
  EXPECT_TRUE(job.cancel());
  // Resolved here and now, without a worker: wait() cannot block.
  EXPECT_TRUE(job.poll());
  EXPECT_EQ(job.state(), JobState::Cancelled);
  EXPECT_EQ(job.startIndex(), -1); // never started
  const Expected<CompileResult>& result = job.wait();
  ASSERT_FALSE(result.ok());
  ASSERT_GE(result.diagnostics().size(), 1u);
  EXPECT_EQ(result.diagnostics()[0].stage, "job-queue");
  EXPECT_NE(result.diagnostics()[0].message.find("job cancelled"),
            std::string::npos);
  // cancel() on a resolved job reports that there was nothing to do.
  EXPECT_FALSE(job.cancel());

  blocker.release();
  session.drainJobs();
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.jobsSubmitted, 1);
  EXPECT_EQ(stats.jobsCancelled, 1);
  EXPECT_EQ(stats.jobsCompleted, 0);
  // The pipeline never ran for the cancelled job.
  EXPECT_EQ(stats.flowCache.misses, 0);
}

TEST(AsyncJobTest, CancelMidPipelineStopsAtAStageBoundary) {
  // Pipeline-level determinism: run a prefix, cancel, and observe the
  // abort at the next stage boundary — with every completed stage
  // already published, so an identical compile resumes from the prefix.
  StageCache cache;
  CancelSource source;
  Pipeline first(test::kInverseHelmholtz, {}, &cache);
  first.setCancelToken(source.token());
  first.require(Stage::Schedule); // parse, lower, schedule run
  EXPECT_EQ(first.provenance(Stage::Schedule), StageProvenance::Ran);

  source.cancel();
  try {
    first.require(Stage::SysGen);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    // Within one stage boundary: the next unmaterialized stage.
    EXPECT_NE(std::string(e.what()).find("before stage 'reschedule'"),
              std::string::npos)
        << e.what();
    EXPECT_FALSE(e.deadlineExpired());
  }
  EXPECT_FALSE(first.hasRun(Stage::Reschedule));

  // StageCache consistency: the identical compile succeeds and adopts
  // the prefix the cancelled pipeline published.
  Pipeline second(test::kInverseHelmholtz, {}, &cache);
  second.runAll();
  EXPECT_GE(second.adoptedStageCount(), 3);
  EXPECT_EQ(second.provenance(Stage::Parse), StageProvenance::Cached);
  EXPECT_EQ(second.provenance(Stage::Schedule), StageProvenance::Cached);
  EXPECT_EQ(second.provenance(Stage::SysGen), StageProvenance::Ran);
}

TEST(AsyncJobTest, CancelledCompileNeverPoisonsTheSessionCache) {
  // A cancelled job's half-compile must not break later identical
  // requests through the Session path (acceptance criterion).
  Session session(SessionOptions{.workers = 1});
  Job<CompileResult> job =
      session.submitCompile(CompileRequest(test::kInverseHelmholtz));
  job.cancel(); // may land before, mid, or after the compile
  job.wait();
  ASSERT_TRUE(job.state() == JobState::Done ||
              job.state() == JobState::Cancelled);

  const Expected<CompileResult> retry =
      session.compile(CompileRequest(test::kInverseHelmholtz));
  ASSERT_TRUE(retry.ok()) << retry.errorText();
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.jobsCompleted + stats.jobsCancelled, stats.jobsSubmitted);
}

TEST(AsyncJobTest, PriorityOrderingIsDeterministicUnderOneWorker) {
  Session session(SessionOptions{.workers = 1});
  PoolBlocker blocker(session); // single worker busy: everything queues

  // Mixed priorities, submitted in this order while nothing can start.
  Job<CompileResult> lowA = session.submitCompile(
      CompileRequest(test::kMatMul2D), {.priority = JobPriority::Low});
  Job<CompileResult> highB = session.submitCompile(
      CompileRequest(test::kMatMul2D), {.priority = JobPriority::High});
  Job<CompileResult> normalC = session.submitCompile(
      CompileRequest(test::kMatMul2D), {.priority = JobPriority::Normal});
  Job<CompileResult> highD = session.submitCompile(
      CompileRequest(test::kMatMul2D), {.priority = JobPriority::High});
  Job<CompileResult> lowE = session.submitCompile(
      CompileRequest(test::kMatMul2D), {.priority = JobPriority::Low});
  EXPECT_EQ(session.stats().jobQueueDepth, 5);

  blocker.release();
  session.drainJobs();

  // Strict priority order, FIFO within a level: B, D, C, A, E.
  EXPECT_EQ(highB.startIndex(), 0);
  EXPECT_EQ(highD.startIndex(), 1);
  EXPECT_EQ(normalC.startIndex(), 2);
  EXPECT_EQ(lowA.startIndex(), 3);
  EXPECT_EQ(lowE.startIndex(), 4);
  for (const auto& job : {lowA, highB, normalC, highD, lowE})
    EXPECT_TRUE(job.wait().ok());
}

TEST(AsyncJobTest, DeadlineExpirySurfacesADiagnosticListEntry) {
  Session session(SessionOptions{.workers = 1});
  PoolBlocker blocker(session);

  Job<CompileResult> job = session.submitCompile(
      CompileRequest(test::kMatMul2D), {.deadlineMillis = 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  blocker.release(); // deadline long past when the worker reaches it
  const Expected<CompileResult>& result = job.wait();
  EXPECT_EQ(job.state(), JobState::Cancelled);
  ASSERT_FALSE(result.ok());
  ASSERT_GE(result.diagnostics().size(), 1u);
  EXPECT_EQ(result.diagnostics()[0].stage, "job-queue");
  EXPECT_NE(result.diagnostics()[0].message.find("deadline exceeded"),
            std::string::npos)
      << result.errorText();
  EXPECT_EQ(session.stats().jobsCancelled, 1);
}

TEST(AsyncJobTest, DestructionWhileJobsPendingDrainsCleanly) {
  std::vector<Job<CompileResult>> jobs;
  {
    Session session(SessionOptions{.workers = 2});
    for (int i = 0; i < 32; ++i) {
      CompileRequest request(test::kInverseHelmholtz);
      FlowOptions options;
      options.hls.clockMHz = 100.0 + i; // distinct: no trivial cache hits
      request.options(options);
      jobs.push_back(session.submitCompile(std::move(request)));
    }
    // Destructor: queued jobs cancel, running ones stop at their next
    // checkpoint, every handle resolves, the pool joins.
  }
  for (const Job<CompileResult>& job : jobs) {
    EXPECT_TRUE(job.poll()); // resolved: wait() cannot block
    const JobState state = job.state();
    EXPECT_TRUE(state == JobState::Done || state == JobState::Cancelled)
        << jobStateName(state);
    if (state == JobState::Cancelled) {
      ASSERT_FALSE(job.wait().ok());
      EXPECT_EQ(job.wait().diagnostics()[0].stage, "job-queue");
    }
  }
}

TEST(AsyncJobTest, SubmitBatchWarmsTheSharedPrefixInDependencyOrder) {
  Session session(SessionOptions{.workers = 4});
  std::vector<CompileRequest> requests;
  for (int i = 0; i < 8; ++i) {
    CompileRequest request(test::kInverseHelmholtz);
    FlowOptions options;
    options.hls.clockMHz = 120.0 + 10.0 * i; // HLS-only: shared prefix
    request.options(options);
    requests.push_back(std::move(request));
  }
  const std::vector<Job<CompileResult>> jobs =
      session.submitBatch(std::move(requests));
  ASSERT_EQ(jobs.size(), 8u);
  int adoptedTotal = 0;
  for (const Job<CompileResult>& job : jobs) {
    const Expected<CompileResult>& result = job.wait();
    ASSERT_TRUE(result.ok()) << result.errorText();
    adoptedTotal += result->flow().pipeline().adoptedStageCount();
  }
  // The leader compiled cold; every follower waited for it and adopted
  // at least the parse..liveness prefix (5 stages) it published.
  EXPECT_GE(adoptedTotal, 5 * 7);
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.jobsCompleted, 8);
  EXPECT_GT(stats.stageCache.hits, 0);
}

TEST(AsyncJobTest, BatchMemberWithBadOverrideFailsAlone) {
  Session session;
  std::vector<CompileRequest> requests;
  requests.push_back(CompileRequest(test::kMatMul2D).set("warp", "1"));
  requests.push_back(CompileRequest(test::kMatMul2D));
  const std::vector<Job<CompileResult>> jobs =
      session.submitBatch(std::move(requests));
  ASSERT_EQ(jobs.size(), 2u);
  const Expected<CompileResult>& bad = jobs[0].wait();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.diagnostics()[0].stage, "options");
  EXPECT_EQ(jobs[0].state(), JobState::Done); // failed, not cancelled
  EXPECT_TRUE(jobs[1].wait().ok()) << jobs[1].wait().errorText();
}

TEST(AsyncJobTest, SweepAndTuneJobsRouteThroughTheSameQueue) {
  // workers = 1 is the interesting case: the sweep job itself occupies
  // the only pool thread, and its per-point parallelFor batch must
  // still make progress (the submitting thread participates).
  Session session(SessionOptions{.workers = 1});
  Job<SweepResult> sweepJob = session.submitSweep(
      SweepRequest(test::kInverseHelmholtz).axis("unroll", {"1", "2"}));
  Job<TuningReport> tuneJob = session.submitTune(
      TuneRequest(test::kMatMul2D).axis("unroll", {"1", "2"}),
      {.priority = JobPriority::High});

  const Expected<SweepResult>& swept = sweepJob.wait();
  ASSERT_TRUE(swept.ok()) << swept.errorText();
  ASSERT_EQ(swept->rows().size(), 2u);
  for (const ExplorationRow& row : swept->rows())
    EXPECT_TRUE(row.ok()) << row.error;

  const Expected<TuningReport>& tuned = tuneJob.wait();
  ASSERT_TRUE(tuned.ok()) << tuned.errorText();
  EXPECT_EQ(tuned->points.size(), 2u);

  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.jobsSubmitted, 2);
  EXPECT_EQ(stats.jobsCompleted, 2);
  EXPECT_EQ(stats.sweepRequests, 1);
  EXPECT_EQ(stats.tuneRequests, 1);
}

TEST(AsyncJobTest, DrainJobsIsABarrierNotACancellation) {
  Session session(SessionOptions{.workers = 2});
  std::vector<Job<CompileResult>> jobs;
  for (int i = 0; i < 6; ++i) {
    CompileRequest request(test::kMatMul2D);
    FlowOptions options;
    options.hls.clockMHz = 150.0 + i;
    request.options(options);
    jobs.push_back(session.submitCompile(std::move(request)));
  }
  session.drainJobs();
  for (const Job<CompileResult>& job : jobs) {
    EXPECT_EQ(job.state(), JobState::Done);
    EXPECT_TRUE(job.wait().ok());
  }
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.jobsCompleted, 6);
  EXPECT_EQ(stats.jobsCancelled, 0);
  // Every job ran, so no detached task can still be waiting unclaimed.
  EXPECT_EQ(session.workerPool().pendingTasks(), 0u);
}

} // namespace
} // namespace cfd
