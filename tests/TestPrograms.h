// Shared CFDlang test programs.
#pragma once

namespace cfd::test {

/// The paper's Fig. 1: the Inverse Helmholtz operator at p = 11.
inline constexpr const char* kInverseHelmholtz = R"(
var input  S : [11 11]
var input  D : [11 11 11]
var input  u : [11 11 11]
var output v : [11 11 11]
var t : [11 11 11]
var r : [11 11 11]
t = S # S # S # u . [[1 6] [3 7] [5 8]]
r = D * t
v = S # S # S # r . [[0 6] [2 7] [4 8]]
)";

/// Same operator at an arbitrary polynomial degree (extent = p + 1).
inline std::string inverseHelmholtzSource(int extent) {
  const std::string n = std::to_string(extent);
  std::string src;
  src += "var input  S : [" + n + " " + n + "]\n";
  src += "var input  D : [" + n + " " + n + " " + n + "]\n";
  src += "var input  u : [" + n + " " + n + " " + n + "]\n";
  src += "var output v : [" + n + " " + n + " " + n + "]\n";
  src += "var t : [" + n + " " + n + " " + n + "]\n";
  src += "var r : [" + n + " " + n + " " + n + "]\n";
  src += "t = S # S # S # u . [[1 6] [3 7] [5 8]]\n";
  src += "r = D * t\n";
  src += "v = S # S # S # r . [[0 6] [2 7] [4 8]]\n";
  return src;
}

/// Spectral interpolation (mentioned in the paper as a simpler operator
/// subsumed by the Inverse Helmholtz): v = (I (x) I (x) I) u.
inline constexpr const char* kInterpolation = R"(
var input  I : [13 11]
var input  u : [11 11 11]
var output v : [13 13 13]
v = I # I # I # u . [[1 6] [3 7] [5 8]]
)";

/// A 2-D matrix-matrix like contraction for small exact tests.
inline constexpr const char* kMatMul2D = R"(
var input  A : [4 5]
var input  B : [5 6]
var output C : [4 6]
C = A # B . [[1 2]]
)";

/// Entry-wise chain exercising +, -, *, / and scalar broadcast.
inline constexpr const char* kEntryWiseChain = R"(
var input  a : [7 9]
var input  b : [7 9]
var output c : [7 9]
var w : [7 9]
w = a * b + a - b
c = w / b * 2 + 1
)";

} // namespace cfd::test
