#include "core/Flow.h"
#include "mem/Dataflow.h"
#include "sched/Reschedule.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd::mem {
namespace {

TEST(DataflowTest, HelmholtzChainDependences) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  const DataflowInfo info = analyzeDataflow(flow.schedule());
  const auto raw = info.ofKind(DependenceKind::RAW);
  // Producer/consumer chain: t0->t1->t->r->t2->t3->v = 6 RAW edges.
  EXPECT_EQ(raw.size(), 6u);
  for (const auto& dep : raw)
    EXPECT_EQ(dep.distance(), 1) << "chain should be tight after "
                                    "rescheduling";
  // No WAW in pseudo-SSA.
  EXPECT_TRUE(info.ofKind(DependenceKind::WAW).empty());
  // S is shared by all six contractions: RAR edges present.
  EXPECT_FALSE(info.ofKind(DependenceKind::RAR).empty());
}

TEST(DataflowTest, RawDistanceIsMinimalAfterListScheduling) {
  // The list scheduler minimizes RAW distance; for the Helmholtz chain
  // the optimum is 6 (every producer directly before its consumer).
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  EXPECT_EQ(analyzeDataflow(flow.schedule()).totalRawDistance(), 6);
}

TEST(DataflowTest, PrintingNamesArrays) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  const DataflowInfo info = analyzeDataflow(flow.schedule());
  const std::string text = info.str(flow.program());
  EXPECT_NE(text.find("RAW"), std::string::npos);
  EXPECT_NE(text.find("via t0"), std::string::npos);
}

TEST(VerifyScheduleTest, AcceptsLegalSchedules) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  EXPECT_EQ(verifySchedule(flow.schedule()), "");
  // All objectives produce legal schedules.
  FlowOptions sw;
  sw.reschedule.objective = sched::ScheduleObjective::Software;
  EXPECT_EQ(
      verifySchedule(Flow::compile(test::kInverseHelmholtz, sw).schedule()),
      "");
}

TEST(VerifyScheduleTest, DetectsIllegalReordering) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  sched::Schedule broken = flow.schedule();
  // Swap a producer after its consumer.
  std::swap(broken.statements[0], broken.statements[1]);
  const std::string violation = verifySchedule(broken);
  EXPECT_NE(violation.find("before it is written"), std::string::npos);
}

TEST(VerifyScheduleTest, DetectsMissingOutput) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  sched::Schedule broken = flow.schedule();
  broken.statements.pop_back(); // drop the statement writing v
  const std::string violation = verifySchedule(broken);
  EXPECT_NE(violation.find("never written"), std::string::npos);
}

TEST(VerifyScheduleTest, DetectsDoubleWrite) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  sched::Schedule broken = flow.schedule();
  broken.statements.push_back(broken.statements.back());
  const std::string violation = verifySchedule(broken);
  EXPECT_NE(violation.find("pseudo-SSA"), std::string::npos);
}

// Property: every rescheduling configuration on every test program
// yields a legal schedule.
struct ScheduleCase {
  const char* source;
  sched::ScheduleObjective objective;
  bool permute;
  bool reorder;
};

class ScheduleLegality : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleLegality, RescheduleIsAlwaysLegal) {
  const ScheduleCase& c = GetParam();
  FlowOptions options;
  options.reschedule.objective = c.objective;
  options.reschedule.permuteLoops = c.permute;
  options.reschedule.reorderStatements = c.reorder;
  const Flow flow = Flow::compile(c.source, options);
  EXPECT_EQ(verifySchedule(flow.schedule()), "");
  EXPECT_LE(flow.validate(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ScheduleLegality,
    ::testing::Values(
        ScheduleCase{test::kInverseHelmholtz,
                     sched::ScheduleObjective::Hardware, true, true},
        ScheduleCase{test::kInverseHelmholtz,
                     sched::ScheduleObjective::Software, true, false},
        ScheduleCase{test::kInverseHelmholtz,
                     sched::ScheduleObjective::Hardware, false, true},
        ScheduleCase{test::kInterpolation,
                     sched::ScheduleObjective::Hardware, true, true},
        ScheduleCase{test::kInterpolation,
                     sched::ScheduleObjective::Software, true, true},
        ScheduleCase{test::kEntryWiseChain,
                     sched::ScheduleObjective::Hardware, true, true},
        ScheduleCase{test::kMatMul2D,
                     sched::ScheduleObjective::Software, true, true}));

} // namespace
} // namespace cfd::mem
