// Tests for the auto-tuning layer (DESIGN.md §7-§8): Pareto dominance,
// strategy determinism, hill-climb convergence, the structural
// pre-filter, and the JSON report round-trip.
#include "core/Pareto.h"
#include "core/Session.h"
#include "core/Tuner.h"
#include "support/Error.h"
#include "support/Json.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace cfd {
namespace {

// ---- Pareto dominance on hand-built rows ----

TEST(ParetoTest, DominanceRequiresNoWorseAndStrictlyBetter) {
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_TRUE(dominates({1, 1}, {2, 2}));
  EXPECT_FALSE(dominates({2, 2}, {1, 2}));
  EXPECT_FALSE(dominates({1, 2}, {1, 2})); // equal: neither dominates
  EXPECT_FALSE(dominates({1, 3}, {2, 2})); // trade-off: incomparable
  EXPECT_FALSE(dominates({2, 2}, {1, 3}));
}

TEST(ParetoTest, FrontierKeepsNonDominatedInInputOrder) {
  const std::vector<std::vector<double>> points = {
      {1.0, 10.0}, // frontier (cheapest latency)
      {2.0, 9.0},  // frontier (trade-off)
      {3.0, 9.0},  // dominated by {2,9}
      {2.0, 12.0}, // dominated by {2,9} and {1,10}
      {5.0, 1.0},  // frontier (cheapest second objective)
  };
  EXPECT_EQ(paretoFrontier(points),
            (std::vector<std::size_t>{0, 1, 4}));
}

TEST(ParetoTest, DuplicatePointsAllStayOnTheFrontier) {
  const std::vector<std::vector<double>> points = {
      {1.0, 2.0}, {1.0, 2.0}, {0.5, 3.0}};
  EXPECT_EQ(paretoFrontier(points),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoTest, EmptyAndSingleton) {
  EXPECT_TRUE(paretoFrontier({}).empty());
  EXPECT_EQ(paretoFrontier({{3.0}}), (std::vector<std::size_t>{0}));
}

TEST(ParetoTest, SingleObjectiveFrontierIsTheMinimum) {
  const std::vector<std::vector<double>> points = {{3}, {1}, {2}, {1}};
  EXPECT_EQ(paretoFrontier(points), (std::vector<std::size_t>{1, 3}));
}

// ---- JSON writer/parser ----

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, DumpIsDeterministicAndParsesBack) {
  json::Value doc = json::Value::object();
  doc.set("name", "tuner \"report\"");
  doc.set("count", std::int64_t{42});
  doc.set("ratio", 0.5);
  doc.set("ok", true);
  doc.set("none", json::Value());
  json::Value list = json::Value::array();
  list.push(std::int64_t{1});
  list.push("two");
  doc.set("list", std::move(list));

  const std::string text = doc.dump(2);
  const json::Value parsed = json::Value::parse(text);
  EXPECT_EQ(parsed.at("name").asString(), "tuner \"report\"");
  EXPECT_EQ(parsed.at("count").asInt(), 42);
  EXPECT_DOUBLE_EQ(parsed.at("ratio").asDouble(), 0.5);
  EXPECT_TRUE(parsed.at("ok").asBool());
  EXPECT_TRUE(parsed.at("none").isNull());
  EXPECT_EQ(parsed.at("list").size(), 2u);
  // Round-trip is lossless: dumping the parsed document reproduces the
  // exact original text (member order is preserved).
  EXPECT_EQ(parsed.dump(2), text);
  // Compact form parses to the same document too.
  EXPECT_EQ(json::Value::parse(doc.dump(-1)).dump(2), text);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse("{"), FlowError);
  EXPECT_THROW(json::Value::parse("[1,]2"), FlowError);
  EXPECT_THROW(json::Value::parse("{} extra"), FlowError);
  EXPECT_THROW(json::Value::parse("nul"), FlowError);
  // Malformed numbers must throw, not silently truncate.
  EXPECT_THROW(json::Value::parse("[1-2]"), FlowError);
  EXPECT_THROW(json::Value::parse("[3ee5]"), FlowError);
  EXPECT_THROW(json::Value::parse("[1.2.3]"), FlowError);
}

TEST(JsonTest, Int64RoundTripsAbove2To53) {
  // 2^53 + 1 is not representable as a double; the exact integer value
  // must survive dump/parse (64-bit tuner seeds rely on this).
  const std::int64_t big = (std::int64_t{1} << 53) + 1;
  json::Value doc = json::Value::object();
  doc.set("seed", big);
  const json::Value parsed = json::Value::parse(doc.dump(-1));
  EXPECT_EQ(parsed.at("seed").asInt(), big);
  EXPECT_EQ(parsed.dump(-1), doc.dump(-1));
}

// ---- Parameter application and the structural pre-filter ----

TEST(TunerTest, ApplyTuneParamCoversEveryAxisAndRejectsJunk) {
  FlowOptions options;
  applyTuneParam(options, "unroll", "4");
  EXPECT_EQ(options.hls.unrollFactor, 4);
  applyTuneParam(options, "m", "8");
  applyTuneParam(options, "k", "2");
  EXPECT_EQ(options.system.memories, 8);
  EXPECT_EQ(options.system.kernels, 2);
  applyTuneParam(options, "sharing", "no");
  EXPECT_FALSE(options.memory.enableSharing);
  applyTuneParam(options, "decoupled", "0");
  EXPECT_FALSE(options.memory.decoupled);
  applyTuneParam(options, "objective", "sw");
  EXPECT_EQ(options.reschedule.objective, sched::ScheduleObjective::Software);
  applyTuneParam(options, "layout", "colmajor");
  EXPECT_EQ(options.layouts.defaultLayout, sched::LayoutKind::ColumnMajor);

  EXPECT_THROW(applyTuneParam(options, "nope", "1"), FlowError);
  EXPECT_THROW(applyTuneParam(options, "unroll", "two"), FlowError);
  EXPECT_THROW(applyTuneParam(options, "sharing", "maybe"), FlowError);
  EXPECT_THROW(applyTuneParam(options, "objective", "fast"), FlowError);
}

TEST(TunerTest, StructuralPrefilterMatchesSysgenRules) {
  FlowOptions options;
  EXPECT_EQ(checkStructuralFeasibility(options), ""); // auto m/k

  options.system.memories = 8;
  options.system.kernels = 2;
  EXPECT_EQ(checkStructuralFeasibility(options), ""); // batch 4 = pow2

  options.system.kernels = 3; // 8 % 3 != 0
  EXPECT_NE(checkStructuralFeasibility(options), "");
  options.system.memories = 12;
  options.system.kernels = 4; // batch 3: not a power of two
  EXPECT_NE(checkStructuralFeasibility(options), "");
  options.system.memories = 2;
  options.system.kernels = 4; // k > m
  EXPECT_NE(checkStructuralFeasibility(options), "");
  options.system.memories = 0;
  options.system.kernels = 4; // m auto: cannot decide without compiling
  EXPECT_EQ(checkStructuralFeasibility(options), "");
}

TEST(TunerTest, PrunesInfeasibleMkPairsBeforeCompiling) {
  TuneSpace space;
  space.axes.push_back(TuneAxis{"m", {"4", "6", "8"}});
  space.axes.push_back(TuneAxis{"k", {"4", "5"}});

  Session session;
  const TuningReport report = tune(session, test::kMatMul2D, space, {});

  // Feasible m/k pairs: (4,4) batch 1, (8,4) batch 2. Everything else
  // fails the structural check and must never reach the compiler.
  EXPECT_EQ(report.spaceSize, 6u);
  EXPECT_EQ(report.points.size(), 2u);
  EXPECT_EQ(report.prunedCount, 4u);
  EXPECT_EQ(session.flowCache().stats().misses, 2);
  for (const TunedPoint& point : report.points)
    EXPECT_TRUE(point.row.ok()) << point.row.error;
}

// ---- Strategies ----

std::vector<std::string> labels(const TuningReport& report) {
  std::vector<std::string> out;
  for (const TunedPoint& point : report.points)
    out.push_back(point.label());
  return out;
}

TuneSpace smallSpace() {
  TuneSpace space;
  space.axes.push_back(TuneAxis{"unroll", {"1", "2"}});
  space.axes.push_back(TuneAxis{"sharing", {"0", "1"}});
  space.axes.push_back(TuneAxis{"decoupled", {"0", "1"}});
  return space;
}

TEST(TunerTest, ExhaustiveCoversTheWholeSpace) {
  Session session;
  const TuningReport report =
      tune(session, test::kMatMul2D, smallSpace(), {});
  EXPECT_EQ(report.points.size(), 8u);
  EXPECT_EQ(report.spaceSize, 8u);
  EXPECT_EQ(report.prunedCount, 0u);
  EXPECT_FALSE(report.frontier.empty());
  for (std::size_t index : report.frontier)
    EXPECT_TRUE(report.points[index].onFrontier);
}

TEST(TunerTest, RandomIsSeedDeterministicAcrossWorkerCounts) {
  TunerOptions base;
  base.strategy = SearchStrategy::Random;
  base.seed = 1234;
  base.sampleCount = 5;

  Session sessionA, sessionB(SessionOptions{.workers = 4});
  TunerOptions a = base;
  a.workers = 1;
  TunerOptions b = base;
  b.workers = 4;

  const TuningReport first = tune(sessionA, test::kMatMul2D, smallSpace(), a);
  const TuningReport second =
      tune(sessionB, test::kMatMul2D, smallSpace(), b);

  EXPECT_EQ(first.points.size(), 5u);
  EXPECT_EQ(labels(first), labels(second));
  EXPECT_EQ(first.frontier, second.frontier);
  for (std::size_t i = 0; i < first.points.size(); ++i)
    EXPECT_EQ(first.points[i].scores, second.points[i].scores);

  // And it evaluates strictly fewer points than exhaustive.
  Session sessionC;
  const TuningReport full =
      tune(sessionC, test::kMatMul2D, smallSpace(), {});
  EXPECT_LT(first.points.size(), full.points.size());
}

TEST(TunerTest, HillClimbConvergesOnAConvexToyObjective) {
  // Convex in the axis index: (log2(m) - 2)^2 is minimized at m = 4.
  Objective toy{"toy", [](const ExplorationRow& row) {
                  const double x =
                      std::log2(double(row.options.system.memories));
                  return (x - 2.0) * (x - 2.0);
                }};

  TuneSpace space;
  space.axes.push_back(TuneAxis{"m", {"1", "2", "4", "8", "16"}});

  Session session;
  TunerOptions options;
  options.strategy = SearchStrategy::HillClimb;
  options.objectives = {toy};
  const TuningReport report = tune(session, test::kMatMul2D, space, options);

  // Walk: m=1 -> m=2 -> m=4, then the m=8 neighbor scores worse and the
  // climb stops. m=16 is never compiled.
  ASSERT_FALSE(report.points.empty());
  EXPECT_LT(report.points.size(), report.spaceSize);
  ASSERT_EQ(report.frontier.size(), 1u);
  EXPECT_EQ(report.points[report.frontier[0]].label(), "m=4");
  EXPECT_DOUBLE_EQ(report.points[report.frontier[0]].scores[0], 0.0);

  // Determinism: the same climb revisits the same points.
  Session session2;
  TunerOptions again = options;
  again.workers = 3;
  const TuningReport repeat = tune(session2, test::kMatMul2D, space, again);
  EXPECT_EQ(labels(report), labels(repeat));
}

TEST(TunerTest, EmptySpaceEvaluatesTheBasePoint) {
  Session session;
  const TuningReport report =
      tune(session, test::kMatMul2D, TuneSpace{}, {});
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_EQ(report.points[0].label(), "base");
  EXPECT_EQ(report.frontier, (std::vector<std::size_t>{0}));
}

TEST(TunerTest, RejectsUnknownAxesBeforeEvaluating) {
  TuneSpace space;
  space.axes.push_back(TuneAxis{"warp", {"1"}});
  EXPECT_THROW(tune(test::kMatMul2D, space, {}), FlowError);
  TuneSpace empty;
  empty.axes.push_back(TuneAxis{"unroll", {}});
  EXPECT_THROW(tune(test::kMatMul2D, empty, {}), FlowError);
}

// ---- Cache accounting (ExplorationRow::cacheHit satellite) ----

TEST(TunerTest, SecondRunIsServedFromTheCache) {
  Session session;
  const TuningReport cold =
      tune(session, test::kMatMul2D, smallSpace(), {});
  EXPECT_EQ(cold.cacheHitCount, 0u);
  const TuningReport warm =
      tune(session, test::kMatMul2D, smallSpace(), {});
  EXPECT_EQ(warm.cacheHitCount, warm.points.size());
  for (const TunedPoint& point : warm.points)
    EXPECT_TRUE(point.row.cacheHit);
  // Scores are identical either way.
  for (std::size_t i = 0; i < cold.points.size(); ++i)
    EXPECT_EQ(cold.points[i].scores, warm.points[i].scores);
}

TEST(ExplorerTest, RowsReportCacheHits) {
  Session session;
  const std::vector<FlowOptions> variants(2);
  const ExplorationResult cold =
      explore(session, test::kMatMul2D, variants, {});
  // Two identical variants: one compile, one hit (dedup inside the
  // cache, regardless of which worker wins the race).
  EXPECT_EQ(cold.cacheHitCount(), 1u);
  const ExplorationResult warm =
      explore(session, test::kMatMul2D, variants, {});
  EXPECT_EQ(warm.cacheHitCount(), 2u);
  for (const ExplorationRow& row : warm.rows)
    EXPECT_TRUE(row.cacheHit);
}

// ---- JSON report shape and round-trip ----

TEST(TunerTest, JsonReportRoundTripsWithTheExpectedShape) {
  Session session;
  const TuningReport report =
      tune(session, test::kMatMul2D, smallSpace(), {});

  const std::string text = report.jsonText();
  const json::Value doc = json::Value::parse(text);

  EXPECT_EQ(doc.at("schema").asString(), "cfd-tune-report-v1");
  EXPECT_EQ(doc.at("strategy").asString(), "exhaustive");
  EXPECT_EQ(doc.at("space").at("size").asInt(), 8);
  EXPECT_EQ(doc.at("space").at("axes").size(), 3u);
  EXPECT_EQ(doc.at("objectives").size(), 2u);
  EXPECT_EQ(doc.at("objectives").at(0u).asString(), "latency");
  EXPECT_EQ(doc.at("stats").at("evaluated").asInt(),
            static_cast<std::int64_t>(report.points.size()));
  ASSERT_EQ(doc.at("points").size(), report.points.size());
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const json::Value& point = doc.at("points").at(i);
    EXPECT_TRUE(point.at("feasible").asBool());
    EXPECT_TRUE(point.contains("scores"));
    EXPECT_TRUE(point.at("system").contains("bram36"));
    EXPECT_EQ(point.at("pareto").asBool(), report.points[i].onFrontier);
  }
  ASSERT_EQ(doc.at("frontier").size(), report.frontier.size());
  for (std::size_t i = 0; i < report.frontier.size(); ++i)
    EXPECT_EQ(doc.at("frontier").at(i).asInt(),
              static_cast<std::int64_t>(report.frontier[i]));
  EXPECT_TRUE(doc.contains("timing"));

  // Lossless round-trip: parse(dump) == dump.
  EXPECT_EQ(doc.dump(2) + "\n", text);
}

TEST(TunerTest, JsonReportIsDeterministicModuloTiming) {
  // Two cold runs on separate caches must agree on everything except
  // the "timing" object and per-point compile_ms/cache_hit fields.
  Session sessionA, sessionB;
  TunerOptions a, b;
  b.workers = 2;
  const json::Value first =
      tune(sessionA, test::kMatMul2D, smallSpace(), a).toJson();
  const json::Value second =
      tune(sessionB, test::kMatMul2D, smallSpace(), b).toJson();

  for (const char* key : {"schema", "strategy", "seed", "space",
                          "objectives", "points", "frontier"}) {
    if (std::string(key) == "points") {
      ASSERT_EQ(first.at("points").size(), second.at("points").size());
      for (std::size_t i = 0; i < first.at("points").size(); ++i) {
        const json::Value& p1 = first.at("points").at(i);
        const json::Value& p2 = second.at("points").at(i);
        for (const char* field : {"params", "feasible", "scores",
                                  "system", "pareto"})
          EXPECT_EQ(p1.at(field).dump(-1), p2.at(field).dump(-1))
              << "point " << i << " field " << field;
      }
      continue;
    }
    EXPECT_EQ(first.at(key).dump(-1), second.at(key).dump(-1)) << key;
  }
}

} // namespace
} // namespace cfd
