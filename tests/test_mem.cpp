#include "core/Flow.h"
#include "mem/Bram.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd::mem {
namespace {

Flow compileHelmholtz(FlowOptions options = {}) {
  return Flow::compile(test::kInverseHelmholtz, options);
}

TEST(LivenessTest, InputsAndOutputsUseVirtualStatements) {
  const Flow flow = compileHelmholtz();
  const LivenessInfo& liveness = flow.liveness();
  const ir::Program& program = flow.program();
  const int last = liveness.numStatements;
  // Inputs are defined by the virtual `first` statement.
  EXPECT_EQ(liveness.of(program.findTensor("S")->id).begin, -1);
  EXPECT_EQ(liveness.of(program.findTensor("u")->id).begin, -1);
  // Outputs are read by the virtual `last` statement.
  EXPECT_EQ(liveness.of(program.findTensor("v")->id).end, last);
}

TEST(LivenessTest, ChainedTemporariesHaveShortIntervals) {
  const Flow flow = compileHelmholtz();
  const LivenessInfo& liveness = flow.liveness();
  const ir::Program& program = flow.program();
  // Each transient lives exactly from its defining statement to the next.
  for (const char* name : {"t0", "t1", "t2", "t3"}) {
    const LiveInterval& interval =
        liveness.of(program.findTensor(name)->id);
    EXPECT_EQ(interval.length(), 2) << name;
  }
  // S is read by all six contractions: live across the whole kernel.
  const LiveInterval& s = liveness.of(program.findTensor("S")->id);
  EXPECT_EQ(s.begin, -1);
  EXPECT_GE(s.end, 5);
}

TEST(LivenessTest, IntervalOverlapSemantics) {
  EXPECT_TRUE((LiveInterval{0, 3}).overlaps({3, 5}));
  EXPECT_FALSE((LiveInterval{0, 2}).overlaps({3, 5}));
  EXPECT_TRUE((LiveInterval{-1, 7}).overlaps({2, 2}));
}

TEST(CompatibilityTest, DisjointLifetimesAreAddressSpaceCompatible) {
  const Flow flow = compileHelmholtz();
  const CompatibilityGraph& graph = flow.compatibilityGraph();
  const ir::Program& program = flow.program();
  const auto id = [&](const char* name) {
    return program.findTensor(name)->id;
  };
  // The producer/consumer chain makes alternating members compatible.
  EXPECT_TRUE(graph.addressSpaceCompatible(id("t0"), id("t")));
  EXPECT_TRUE(graph.addressSpaceCompatible(id("t"), id("t2")));
  EXPECT_TRUE(graph.addressSpaceCompatible(id("u"), id("t1")));
  // Adjacent producer/consumer pairs conflict.
  EXPECT_FALSE(graph.addressSpaceCompatible(id("t0"), id("t1")));
  EXPECT_FALSE(graph.addressSpaceCompatible(id("u"), id("t0")));
  // Inputs overlap each other (both live from `first`).
  EXPECT_FALSE(graph.addressSpaceCompatible(id("S"), id("D")));
}

TEST(CompatibilityTest, InterfaceCompatibilityMatchesFig5Grouping) {
  const Flow flow = compileHelmholtz();
  const CompatibilityGraph& graph = flow.compatibilityGraph();
  const ir::Program& program = flow.program();
  const auto id = [&](const char* name) {
    return program.findTensor(name)->id;
  };
  // S and D are never read by the same statement -> interface compatible
  // (the paper's Fig. 5 connects them in the interface group).
  EXPECT_TRUE(graph.interfaceCompatible(id("S"), id("D")));
  // S and u are read together by the first contraction.
  EXPECT_FALSE(graph.interfaceCompatible(id("S"), id("u")));
  // D and t are read together by the Hadamard product.
  EXPECT_FALSE(graph.interfaceCompatible(id("D"), id("t")));
}

TEST(CompatibilityTest, DotOutputContainsAllNodes) {
  const Flow flow = compileHelmholtz();
  const std::string dot = flow.compatibilityDot();
  for (const char* name :
       {"S", "D", "u", "v", "t", "r", "t0", "t1", "t2", "t3"})
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(BramTest, GeometryChoices) {
  // 1331 x 64b: best is 512x72 mode -> 3 BRAM36.
  EXPECT_EQ(bram36For(1331, 64, BramPacking::ExactDepth), 3);
  // Power-of-two padding: 1331 -> 2048 -> 4 BRAM36.
  EXPECT_EQ(bram36For(1331, 64, BramPacking::Pow2Depth), 4);
  // 121 x 64b fits one BRAM36.
  EXPECT_EQ(bram36For(121, 64, BramPacking::ExactDepth), 1);
  // Narrow deep arrays prefer narrow modes: 4096 x 9b -> 1 BRAM36.
  EXPECT_EQ(bram36For(4096, 9, BramPacking::ExactDepth), 1);
  // 1024 x 36b -> 1 BRAM36.
  EXPECT_EQ(bram36For(1024, 36, BramPacking::ExactDepth), 1);
}

TEST(BramTest, NextPow2) {
  EXPECT_EQ(nextPow2(1), 1);
  EXPECT_EQ(nextPow2(2), 2);
  EXPECT_EQ(nextPow2(3), 4);
  EXPECT_EQ(nextPow2(1331), 2048);
  EXPECT_THROW(nextPow2(0), InternalError);
}

TEST(MnemosyneTest, SharingMergesTemporariesIntoTwoBuffers) {
  const Flow flow = compileHelmholtz();
  const MemoryPlan& plan = flow.memoryPlan();
  // 4 dedicated interface buffers + 2 shared temporary buffers.
  EXPECT_EQ(plan.buffers.size(), 6u);
  EXPECT_EQ(plan.plmBram36(), 16);
  EXPECT_EQ(plan.acceleratorBram36(), 0);
  // The two shared buffers carry 3 arrays each.
  int sharedBuffers = 0;
  for (const auto& buffer : plan.buffers)
    if (buffer.arrays.size() > 1) {
      ++sharedBuffers;
      EXPECT_EQ(buffer.arrays.size(), 3u);
      EXPECT_EQ(buffer.depth, 1331);
    }
  EXPECT_EQ(sharedBuffers, 2);
}

TEST(MnemosyneTest, SharedBuffersAreConflictFree) {
  const Flow flow = compileHelmholtz();
  const MemoryPlan& plan = flow.memoryPlan();
  const CompatibilityGraph& graph = flow.compatibilityGraph();
  for (const auto& buffer : plan.buffers)
    for (std::size_t i = 0; i < buffer.arrays.size(); ++i)
      for (std::size_t j = i + 1; j < buffer.arrays.size(); ++j)
        EXPECT_TRUE(graph.addressSpaceCompatible(buffer.arrays[i],
                                                 buffer.arrays[j]));
}

TEST(MnemosyneTest, NoSharingGivesDedicatedBuffers) {
  FlowOptions options;
  options.memory.enableSharing = false;
  const Flow flow = compileHelmholtz(options);
  const MemoryPlan& plan = flow.memoryPlan();
  EXPECT_EQ(plan.buffers.size(), 10u); // one per array (Fig. 6)
  EXPECT_EQ(plan.plmBram36(), 28);     // 1 + 9 * 3
  for (const auto& buffer : plan.buffers)
    EXPECT_EQ(buffer.arrays.size(), 1u);
}

TEST(MnemosyneTest, NonDecoupledKeepsTemporariesInside) {
  FlowOptions options;
  options.memory.decoupled = false;
  const Flow flow = compileHelmholtz(options);
  const MemoryPlan& plan = flow.memoryPlan();
  // Interface PLMs outside; t, r, t0..t3 inside with pow2 padding.
  EXPECT_EQ(plan.plmBram36(), 10);
  EXPECT_EQ(plan.acceleratorBram36(), 24); // 6 arrays * 4 BRAM36
}

TEST(MnemosyneTest, BufferLookupByTensor) {
  const Flow flow = compileHelmholtz();
  const MemoryPlan& plan = flow.memoryPlan();
  const ir::Program& program = flow.program();
  for (const auto& tensor : program.tensors()) {
    const int index = plan.bufferIndexOf(tensor.id);
    ASSERT_GE(index, 0);
    const PlmBuffer& buffer =
        plan.buffers[static_cast<std::size_t>(index)];
    EXPECT_NE(std::find(buffer.arrays.begin(), buffer.arrays.end(),
                        tensor.id),
              buffer.arrays.end());
    EXPECT_GE(buffer.depth, tensor.type.numElements());
  }
}

TEST(MnemosyneTest, ConfigContainsAllSections) {
  const Flow flow = compileHelmholtz();
  const std::string config = flow.mnemosyneConfig();
  EXPECT_NE(config.find("[arrays]"), std::string::npos);
  EXPECT_NE(config.find("[access_patterns]"), std::string::npos);
  EXPECT_NE(config.find("[address_space_compatible]"), std::string::npos);
  EXPECT_NE(config.find("[interface_compatible]"), std::string::npos);
  EXPECT_NE(config.find("t0 depth=1331"), std::string::npos);
}

TEST(MnemosynePackingTest, SmallDegreePacksInterfaceCompatible) {
  // At extent 5 every array fits well under one 512-word bank, so the
  // interface-compatible interface arrays (e.g. S, D, v — never read by
  // the same statement) pack into shared physical BRAMs.
  FlowOptions packed;
  FlowOptions unpacked;
  unpacked.memory.packInterfaceCompatible = false;
  const Flow with = Flow::compile(test::inverseHelmholtzSource(5), packed);
  const Flow without =
      Flow::compile(test::inverseHelmholtzSource(5), unpacked);
  EXPECT_LT(with.memoryPlan().buffers.size(),
            without.memoryPlan().buffers.size());
  EXPECT_LE(with.memoryPlan().plmBram36(),
            without.memoryPlan().plmBram36());
  // Members of a packed buffer occupy disjoint address ranges.
  for (const auto& buffer : with.memoryPlan().buffers) {
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    for (ir::TensorId id : buffer.arrays) {
      const std::int64_t base = with.memoryPlan().baseOffsetOf(id);
      const std::int64_t size =
          with.program().tensor(id).type.numElements();
      // Overlay members share base 0; packed members must not overlap
      // overlay groups from *other* source buffers.
      ranges.emplace_back(base, base + size);
    }
    for (std::size_t a = 0; a < ranges.size(); ++a)
      for (std::size_t b = a + 1; b < ranges.size(); ++b) {
        const bool disjoint = ranges[a].second <= ranges[b].first ||
                              ranges[b].second <= ranges[a].first;
        const bool overlaySharing =
            ranges[a].first == ranges[b].first; // same color class
        EXPECT_TRUE(disjoint || overlaySharing);
      }
  }
  EXPECT_LE(with.validate(), 1e-9);
}

TEST(MnemosynePackingTest, NoEffectAtPaperDegree) {
  // At p = 11 the arrays are 1,331 words: nothing fits a 512-word bank
  // together, so the paper's numbers are unaffected.
  FlowOptions packed;
  FlowOptions unpacked;
  unpacked.memory.packInterfaceCompatible = false;
  const Flow with = Flow::compile(test::kInverseHelmholtz, packed);
  const Flow without = Flow::compile(test::kInverseHelmholtz, unpacked);
  EXPECT_EQ(with.memoryPlan().plmBram36(),
            without.memoryPlan().plmBram36());
  EXPECT_EQ(with.memoryPlan().buffers.size(),
            without.memoryPlan().buffers.size());
}

// Property sweep: sharing never increases the BRAM count, across
// polynomial degrees.
class SharingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SharingProperty, SharingNeverIncreasesBram) {
  const std::string source = test::inverseHelmholtzSource(GetParam());
  FlowOptions off;
  off.memory.enableSharing = false;
  const Flow with = Flow::compile(source);
  const Flow without = Flow::compile(source, off);
  EXPECT_LE(with.memoryPlan().plmBram36(),
            without.memoryPlan().plmBram36());
  // Sharing is transparent to correctness.
  EXPECT_LE(with.validate(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Degrees, SharingProperty,
                         ::testing::Values(3, 5, 7, 9, 11, 13));

} // namespace
} // namespace cfd::mem
