#include "core/Flow.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd::sysgen {
namespace {

Flow compileHelmholtz(bool sharing = true, int m = 0, int k = 0) {
  FlowOptions options;
  options.memory.enableSharing = sharing;
  options.system.memories = m;
  options.system.kernels = k;
  return Flow::compile(test::kInverseHelmholtz, options);
}

TEST(SystemGeneratorTest, MaxReplicasMatchPaper) {
  // Paper §VI: up to m = 8 without sharing, m = 16 with sharing.
  EXPECT_EQ(compileHelmholtz(false).systemDesign().m, 8);
  EXPECT_EQ(compileHelmholtz(true).systemDesign().m, 16);
}

TEST(SystemGeneratorTest, ArchitectureVariants) {
  EXPECT_EQ(compileHelmholtz(true, 1, 1).systemDesign().variant,
            ArchitectureVariant::SingleKernel);
  EXPECT_EQ(compileHelmholtz(true, 8, 8).systemDesign().variant,
            ArchitectureVariant::ParallelEqual);
  const SystemDesign batched = compileHelmholtz(true, 8, 2).systemDesign();
  EXPECT_EQ(batched.variant, ArchitectureVariant::Batched);
  EXPECT_EQ(batched.batch, 4);
}

TEST(SystemGeneratorTest, InvalidConfigurationsRejected) {
  // k > m violates the paper's m >= k assumption.
  EXPECT_THROW(compileHelmholtz(true, 2, 4), FlowError);
  // m must be a power-of-two multiple of k.
  EXPECT_THROW(compileHelmholtz(true, 6, 2), FlowError);
  EXPECT_THROW(compileHelmholtz(true, 12, 4), FlowError);
  // Over-provisioning violates Eq. 3 (BRAM bound).
  EXPECT_THROW(compileHelmholtz(false, 16, 16), FlowError);
  EXPECT_THROW(compileHelmholtz(true, 32, 32), FlowError);
}

TEST(SystemGeneratorTest, Equation3Holds) {
  for (int m : {1, 2, 4, 8, 16}) {
    const SystemDesign design = compileHelmholtz(true, m, m).systemDesign();
    const hls::DeviceResources device = hls::kZu7ev;
    EXPECT_LE(design.total.lut, device.lut);
    EXPECT_LE(design.total.ff, device.ff);
    EXPECT_LE(design.total.dsp, device.dsp);
    EXPECT_LE(design.total.bram36, device.bram36);
    // DSPs scale exactly with k (one datapath per kernel).
    EXPECT_EQ(design.total.dsp, 15 * m);
  }
}

TEST(SystemGeneratorTest, ResourceScalingIsAffineInM) {
  const auto total = [](int m) {
    return compileHelmholtz(true, m, m).systemDesign().total;
  };
  const hls::Resources r1 = total(1);
  const hls::Resources r2 = total(2);
  const hls::Resources r4 = total(4);
  // Per-replica increments are constant.
  EXPECT_EQ(r2.lut - r1.lut, (r4.lut - r2.lut) / 2);
  EXPECT_EQ(r2.ff - r1.ff, (r4.ff - r2.ff) / 2);
}

TEST(SystemGeneratorTest, AddressMapIsPow2AlignedAndDisjoint) {
  const SystemDesign design = compileHelmholtz().systemDesign();
  ASSERT_EQ(design.addressMap.size(), 4u); // S, D, u, v
  std::int64_t previousEnd = 0;
  for (const auto& entry : design.addressMap) {
    EXPECT_EQ(entry.windowBytes & (entry.windowBytes - 1), 0)
        << entry.array;
    EXPECT_GE(entry.windowBytes, entry.byteSize);
    EXPECT_GE(entry.byteOffset, previousEnd);
    previousEnd = entry.byteOffset + entry.windowBytes;
  }
  EXPECT_GE(design.plmWindowBytes, previousEnd);
  EXPECT_EQ(design.plmWindowBytes & (design.plmWindowBytes - 1), 0);
}

TEST(SystemGeneratorTest, TransferBytesPerElement) {
  const SystemDesign design = compileHelmholtz().systemDesign();
  // Inputs: S (121) + D (1331) + u (1331) doubles; output: v.
  EXPECT_EQ(design.inputBytesPerElement, (121 + 1331 + 1331) * 8);
  EXPECT_EQ(design.outputBytesPerElement, 1331 * 8);
}

TEST(SystemGeneratorTest, HostCodeContainsControlProtocol) {
  const Flow flow = compileHelmholtz(true, 16, 16);
  const std::string host = flow.hostCode();
  EXPECT_NE(host.find("#define CFD_M 16"), std::string::npos);
  EXPECT_NE(host.find("#define CFD_K 16"), std::string::npos);
  EXPECT_NE(host.find("CTRL_START"), std::string::npos);
  EXPECT_NE(host.find("wait_for_interrupt"), std::string::npos);
  EXPECT_NE(host.find("memcpy"), std::string::npos);
  // Every interface array appears in the transfers.
  for (const char* name : {"CFD_OFF_S", "CFD_OFF_D", "CFD_OFF_u",
                           "CFD_OFF_v"})
    EXPECT_NE(host.find(name), std::string::npos) << name;
}

TEST(SystemGeneratorTest, BatchedHostCodeRunsMultipleRounds) {
  const Flow flow = compileHelmholtz(true, 8, 2);
  const std::string host = flow.hostCode();
  EXPECT_NE(host.find("#define CFD_BATCH 4"), std::string::npos);
}

TEST(SystemGeneratorTest, ReportPrinting) {
  const SystemDesign design = compileHelmholtz(true, 16, 16).systemDesign();
  const std::string report = design.str();
  EXPECT_NE(report.find("m=16 k=16"), std::string::npos);
  EXPECT_NE(report.find("Fig. 7b"), std::string::npos);
}

} // namespace
} // namespace cfd::sysgen
