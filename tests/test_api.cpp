#include "api/KernelHandle.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace cfd::api {
namespace {

constexpr const char* kSmallHelmholtz = R"(
var input  S : [5 5]
var input  D : [5 5 5]
var input  u : [5 5 5]
var output v : [5 5 5]
var t : [5 5 5]
var r : [5 5 5]
t = S # S # S # u . [[1 6] [3 7] [5 8]]
r = D * t
v = S # S # S # r . [[0 6] [2 7] [4 8]]
)";

struct Buffers {
  std::vector<double> S = std::vector<double>(25);
  std::vector<double> D = std::vector<double>(125);
  std::vector<double> u = std::vector<double>(125);
  std::vector<double> v = std::vector<double>(125);

  Buffers() {
    for (std::size_t i = 0; i < S.size(); ++i)
      S[i] = 0.01 * static_cast<double>(i) - 0.1;
    for (std::size_t i = 0; i < D.size(); ++i) {
      D[i] = 1.0 / (1.0 + static_cast<double>(i));
      u[i] = std::sin(0.05 * static_cast<double>(i));
    }
  }

  ArgumentPack args() {
    ArgumentPack pack;
    pack.bind("S", std::span<const double>(S));
    pack.bind("D", std::span<const double>(D));
    pack.bind("u", std::span<const double>(u));
    pack.bind("v", std::span<double>(v));
    return pack;
  }
};

TEST(KernelHandleTest, InterpreterEngineRuns) {
  KernelHandle handle = KernelHandle::create(kSmallHelmholtz);
  Buffers buffers;
  handle.invoke(buffers.args());
  EXPECT_EQ(handle.invocations(), 1);
  EXPECT_GT(handle.lastCycles(), 0);
  // Output must be non-trivial.
  const double sum = std::accumulate(buffers.v.begin(), buffers.v.end(),
                                     0.0, [](double a, double b) {
                                       return a + std::abs(b);
                                     });
  EXPECT_GT(sum, 0.0);
}

TEST(KernelHandleTest, EnginesAgree) {
  KernelHandle cpu = KernelHandle::create(kSmallHelmholtz,
                                          Engine::Interpreter);
  KernelHandle fpga = KernelHandle::create(kSmallHelmholtz,
                                           Engine::SimulatedFpga);
  Buffers a, b;
  cpu.invoke(a.args());
  fpga.invoke(b.args());
  for (std::size_t i = 0; i < a.v.size(); ++i)
    EXPECT_NEAR(a.v[i], b.v[i], 1e-12) << i;
}

TEST(KernelHandleTest, RepeatedInvocationsAreIndependent) {
  KernelHandle handle =
      KernelHandle::create(kSmallHelmholtz, Engine::SimulatedFpga);
  Buffers buffers;
  handle.invoke(buffers.args());
  const std::vector<double> first = buffers.v;
  // Same inputs -> same outputs (no state leaks across invocations even
  // though the PLM buffers are shared storage).
  handle.invoke(buffers.args());
  EXPECT_EQ(buffers.v, first);
  // Different inputs -> different outputs.
  buffers.u[0] += 1.0;
  handle.invoke(buffers.args());
  EXPECT_NE(buffers.v, first);
  EXPECT_EQ(handle.invocations(), 3);
}

TEST(KernelHandleTest, MissingBindingThrows) {
  KernelHandle handle = KernelHandle::create(kSmallHelmholtz);
  Buffers buffers;
  ArgumentPack incomplete;
  incomplete.bind("S", std::span<const double>(buffers.S));
  incomplete.bind("u", std::span<const double>(buffers.u));
  incomplete.bind("v", std::span<double>(buffers.v));
  EXPECT_THROW(handle.invoke(incomplete), FlowError); // D missing
}

TEST(KernelHandleTest, OutputBoundAsInputThrows) {
  KernelHandle handle = KernelHandle::create(kSmallHelmholtz);
  Buffers buffers;
  ArgumentPack pack;
  pack.bind("S", std::span<const double>(buffers.S));
  pack.bind("D", std::span<const double>(buffers.D));
  pack.bind("u", std::span<const double>(buffers.u));
  pack.bind("v", std::span<const double>(buffers.v)); // const!
  EXPECT_THROW(handle.invoke(pack), FlowError);
}

TEST(KernelHandleTest, WrongBufferSizeThrows) {
  KernelHandle handle = KernelHandle::create(kSmallHelmholtz);
  Buffers buffers;
  std::vector<double> tooSmall(7);
  ArgumentPack pack = buffers.args();
  pack.bind("u", std::span<const double>(tooSmall));
  EXPECT_THROW(handle.invoke(pack), FlowError);
}

TEST(KernelHandleTest, FlowIsInspectable) {
  KernelHandle handle = KernelHandle::create(kSmallHelmholtz);
  EXPECT_EQ(handle.flow().schedule().statements.size(), 7u);
  EXPECT_EQ(handle.engine(), Engine::Interpreter);
}

TEST(ArgumentPackTest, MutableBufferServesAsInput) {
  ArgumentPack pack;
  std::vector<double> data(4, 1.0);
  pack.bind("x", std::span<double>(data));
  EXPECT_TRUE(pack.has("x"));
  EXPECT_EQ(pack.inputBuffer("x").size(), 4u);
  EXPECT_EQ(pack.outputBuffer("x").size(), 4u);
  EXPECT_THROW(pack.inputBuffer("y"), FlowError);
}

TEST(ArgumentPackTest, RebindingReplacesDeterministically) {
  // A name lives in exactly one table: rebinding mutable-then-const (or
  // the reverse) must not leave a stale shadow behind.
  ArgumentPack pack;
  std::vector<double> first(4, 1.0);
  std::vector<double> second(8, 2.0);

  pack.bind("x", std::span<double>(first));
  pack.bind("x", std::span<const double>(second));
  EXPECT_EQ(pack.inputBuffer("x").size(), 8u); // last bind wins
  EXPECT_THROW(pack.outputBuffer("x"), FlowError); // now const-only

  pack.bind("x", std::span<double>(first));
  EXPECT_EQ(pack.inputBuffer("x").size(), 4u);
  EXPECT_EQ(pack.outputBuffer("x").size(), 4u); // mutable again

  // Mutable-to-mutable and const-to-const rebinds replace too.
  pack.bind("x", std::span<double>(second));
  EXPECT_EQ(pack.outputBuffer("x").size(), 8u);
}

TEST(ArgumentPackTest, NamesListsEveryBindingOnceSorted) {
  ArgumentPack pack;
  std::vector<double> data(2, 0.0);
  pack.bind("c", std::span<const double>(data));
  pack.bind("a", std::span<double>(data));
  pack.bind("b", std::span<const double>(data));
  pack.bind("a", std::span<const double>(data)); // rebind, not a dup
  EXPECT_EQ(pack.names(),
            (std::vector<std::string>{"a", "b", "c"}));
}

} // namespace
} // namespace cfd::api
