#include "core/Explorer.h"
#include "core/Session.h"
#include "core/FlowCache.h"
#include "core/Pipeline.h"
#include "support/Error.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cfd {
namespace {

// ---- normalizeOptions: the single clamp site ----

TEST(PipelineTest, NormalizeOptionsCouplesUnrollBanksAndPragmas) {
  FlowOptions options;
  options.hls.unrollFactor = 4;
  normalizeOptions(options);
  EXPECT_EQ(options.memory.banks, 4);
  EXPECT_EQ(options.emitter.unrollFactor, 4);
  // Idempotent, and never lowers an explicit larger request.
  options.memory.banks = 8;
  normalizeOptions(options);
  EXPECT_EQ(options.memory.banks, 8);
  EXPECT_EQ(options.emitter.unrollFactor, 4);
}

TEST(PipelineTest, FlowExposesNormalizedOptions) {
  FlowOptions options;
  options.hls.unrollFactor = 2;
  const Flow flow = Flow::compile(test::kInverseHelmholtz, options);
  EXPECT_EQ(flow.options().memory.banks, 2);
  EXPECT_EQ(flow.options().emitter.unrollFactor, 2);
}

// ---- Lazy stage execution ----

TEST(PipelineTest, StagesRunLazilyAndOnlyWhenRequested) {
  Pipeline pipeline(test::kInverseHelmholtz);
  for (int i = 0; i < kStageCount; ++i)
    EXPECT_FALSE(pipeline.hasRun(static_cast<Stage>(i)));

  pipeline.ast();
  EXPECT_TRUE(pipeline.hasRun(Stage::Parse));
  EXPECT_FALSE(pipeline.hasRun(Stage::Lower));

  pipeline.schedule();
  EXPECT_TRUE(pipeline.hasRun(Stage::Lower));
  EXPECT_TRUE(pipeline.hasRun(Stage::Reschedule));
  EXPECT_FALSE(pipeline.hasRun(Stage::Liveness));
  EXPECT_FALSE(pipeline.hasRun(Stage::Hls));

  pipeline.kernelReport();
  EXPECT_TRUE(pipeline.hasRun(Stage::MemoryPlan));
  EXPECT_TRUE(pipeline.hasRun(Stage::Hls));
  EXPECT_FALSE(pipeline.hasRun(Stage::SysGen));

  pipeline.systemDesign();
  for (int i = 0; i < kStageCount; ++i)
    EXPECT_TRUE(pipeline.hasRun(static_cast<Stage>(i)));
  EXPECT_GT(pipeline.totalMillis(), 0.0);
  EXPECT_FALSE(pipeline.timingReport().empty());
}

TEST(PipelineTest, LazyResultsMatchEagerFlow) {
  Pipeline pipeline(test::kInverseHelmholtz);
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  EXPECT_EQ(pipeline.systemDesign().str(), flow.systemDesign().str());
  EXPECT_EQ(pipeline.kernelReport().str(), flow.kernelReport().str());
  EXPECT_EQ(pipeline.schedule().str(), flow.schedule().str());
}

TEST(PipelineTest, ParseErrorsSurfaceOnFirstRequirement) {
  Pipeline pipeline("not a program");
  EXPECT_THROW(pipeline.ast(), FlowError);
  EXPECT_FALSE(pipeline.hasRun(Stage::Parse));
}

// ---- FlowCache ----

TEST(FlowCacheTest, CachedCompileIsByteIdenticalToFresh) {
  FlowCache cache;
  const auto cached = cache.compile(test::kInverseHelmholtz);
  const Flow fresh = Flow::compile(test::kInverseHelmholtz);
  EXPECT_EQ(cached->cCode(), fresh.cCode());
  EXPECT_EQ(cached->mnemosyneConfig(), fresh.mnemosyneConfig());
  EXPECT_EQ(cached->hostCode(), fresh.hostCode());
}

TEST(FlowCacheTest, RepeatCompileHitsAndSharesTheInstance) {
  FlowCache cache;
  const auto first = cache.compile(test::kInverseHelmholtz);
  const auto second = cache.compile(test::kInverseHelmholtz);
  EXPECT_EQ(first.get(), second.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(FlowCacheTest, NormalizationUnifiesEquivalentSpellings) {
  // unroll=2 implies banks=2; spelling banks=2 explicitly must land on
  // the same cache entry.
  FlowCache cache;
  FlowOptions implicitBanks;
  implicitBanks.hls.unrollFactor = 2;
  FlowOptions explicitBanks;
  explicitBanks.hls.unrollFactor = 2;
  explicitBanks.memory.banks = 2;
  explicitBanks.emitter.unrollFactor = 2;
  const auto a = cache.compile(test::kInverseHelmholtz, implicitBanks);
  const auto b = cache.compile(test::kInverseHelmholtz, explicitBanks);
  EXPECT_EQ(a.get(), b.get());
}

TEST(FlowCacheTest, DistinctOptionsGetDistinctEntries) {
  FlowCache cache;
  FlowOptions noSharing;
  noSharing.memory.enableSharing = false;
  const auto a = cache.compile(test::kInverseHelmholtz);
  const auto b = cache.compile(test::kInverseHelmholtz, noSharing);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(FlowCacheTest, ConcurrentCompilesOfOneKeyDeduplicate) {
  FlowCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Flow>> flows(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&cache, &flows, t] {
      flows[t] = cache.compile(test::kInverseHelmholtz);
    });
  for (auto& thread : threads)
    thread.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(flows[0].get(), flows[t].get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(FlowCacheTest, CapacityBoundsRetainedEntries) {
  FlowCache cache;
  cache.setCapacity(2);
  for (int n : {5, 7, 9})
    cache.compile(test::inverseHelmholtzSource(n));
  EXPECT_EQ(cache.size(), 2u);
  // The oldest entry (n = 5) was evicted; recompiling it is a miss.
  cache.compile(test::inverseHelmholtzSource(5));
  EXPECT_EQ(cache.stats().misses, 4);
  // The still-resident newest entry is a hit.
  cache.compile(test::inverseHelmholtzSource(9));
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(FlowCacheTest, CompileErrorsPropagateAndAreNotCached) {
  FlowCache cache;
  EXPECT_THROW(cache.compile("not a program"), FlowError);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW(cache.compile("not a program"), FlowError);
}

// ---- Explorer ----

std::vector<FlowOptions> smallSweep() {
  std::vector<FlowOptions> variants;
  for (bool sharing : {false, true})
    for (int unroll : {1, 2}) {
      FlowOptions options;
      options.memory.enableSharing = sharing;
      options.hls.unrollFactor = unroll;
      variants.push_back(options);
    }
  return variants;
}

TEST(ExplorerTest, ResultsAreIndependentOfWorkerCount) {
  const std::string source = test::inverseHelmholtzSource(5);
  const std::vector<FlowOptions> variants = smallSweep();

  Session sessionA, sessionB(SessionOptions{.workers = 4});
  ExplorerOptions serial;
  serial.workers = 1;
  serial.simulateElements = 1000;
  ExplorerOptions parallel = serial;
  parallel.workers = 4;

  const ExplorationResult a = explore(sessionA, source, variants, serial);
  const ExplorationResult b =
      explore(sessionB, source, variants, parallel);
  ASSERT_EQ(a.rows.size(), variants.size());
  ASSERT_EQ(b.rows.size(), variants.size());
  EXPECT_EQ(a.workers, 1);
  EXPECT_EQ(b.workers, 4);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    ASSERT_TRUE(a.rows[i].ok());
    ASSERT_TRUE(b.rows[i].ok());
    EXPECT_EQ(a.rows[i].index, i);
    EXPECT_EQ(b.rows[i].index, i);
    EXPECT_EQ(a.rows[i].flow->systemDesign().str(),
              b.rows[i].flow->systemDesign().str());
    EXPECT_EQ(a.rows[i].flow->cCode(), b.rows[i].flow->cCode());
    EXPECT_EQ(a.rows[i].sim.totalTimeUs(), b.rows[i].sim.totalTimeUs());
  }
}

TEST(ExplorerTest, InfeasibleVariantsReportErrorsWithoutAborting) {
  std::vector<FlowOptions> variants(2);
  variants[1].system.memories = 3; // not a power-of-two multiple of k
  variants[1].system.kernels = 2;
  ExplorerOptions options;
  options.workers = 2;
  Session session;
  const ExplorationResult result =
      explore(session, test::inverseHelmholtzSource(5), variants, options);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_TRUE(result.rows[0].ok());
  EXPECT_FALSE(result.rows[1].ok());
  EXPECT_FALSE(result.rows[1].error.empty());
  EXPECT_EQ(result.rows[1].flow, nullptr);
  EXPECT_EQ(result.feasibleCount(), 1u);
}

TEST(ExplorerTest, SweepReusesTheSharedCacheAcrossRuns) {
  Session session;
  ExplorerOptions options;
  options.workers = 2;
  const std::string source = test::inverseHelmholtzSource(5);
  const std::vector<FlowOptions> variants = smallSweep();
  explore(session, source, variants, options);
  const auto cold = session.flowCache().stats();
  EXPECT_EQ(cold.misses, static_cast<std::int64_t>(variants.size()));
  const ExplorationResult warm = explore(session, source, variants, options);
  EXPECT_EQ(warm.cacheStats.misses, cold.misses);
  EXPECT_EQ(warm.cacheStats.hits,
            cold.hits + static_cast<std::int64_t>(variants.size()));
}

TEST(ExplorerTest, MixedSourceJobsExplore) {
  std::vector<ExplorationJob> jobs;
  for (int n : {5, 7}) {
    ExplorationJob job;
    job.source = test::inverseHelmholtzSource(n);
    jobs.push_back(std::move(job));
  }
  Session session;
  ExplorerOptions options;
  options.simulateElements = 100;
  const ExplorationResult result = explore(session, jobs, options);
  ASSERT_EQ(result.rows.size(), 2u);
  for (const ExplorationRow& row : result.rows) {
    ASSERT_TRUE(row.ok());
    EXPECT_TRUE(row.simulated);
    EXPECT_GT(row.sim.totalTimeUs(), 0.0);
  }
  // Different degrees produce genuinely different systems.
  EXPECT_NE(result.rows[0].flow->systemDesign().plmWindowBytes,
            result.rows[1].flow->systemDesign().plmWindowBytes);
}

} // namespace
} // namespace cfd
