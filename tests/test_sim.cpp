#include "core/Flow.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd::sim {
namespace {

Flow compileHelmholtz(int m = 0, int k = 0) {
  FlowOptions options;
  options.system.memories = m;
  options.system.kernels = k;
  return Flow::compile(test::kInverseHelmholtz, options);
}

TEST(PlatformSimTest, RoundAccounting) {
  const Flow flow = compileHelmholtz(4, 4);
  const SimResult result = flow.simulate({.numElements = 100});
  EXPECT_EQ(result.mainLoopIterations, 25); // ceil(100 / 4)
  EXPECT_EQ(result.rounds, 25);             // batch = 1
  EXPECT_GT(result.kernelTimeUs, 0);
  EXPECT_GT(result.transferTimeUs, 0);
}

TEST(PlatformSimTest, BatchedRounds) {
  const Flow flow = compileHelmholtz(8, 2);
  const SimResult result = flow.simulate({.numElements = 80});
  EXPECT_EQ(result.mainLoopIterations, 10);
  EXPECT_EQ(result.rounds, 40); // 4 rounds per iteration
}

TEST(PlatformSimTest, PartialTailIsHandled) {
  const Flow flow = compileHelmholtz(8, 8);
  const SimResult result = flow.simulate({.numElements = 20});
  // 8 + 8 + 4: three iterations, the last with a partial PLM fill.
  EXPECT_EQ(result.mainLoopIterations, 3);
  EXPECT_EQ(result.rounds, 3);
  // Transfers only move real elements.
  const Flow one = compileHelmholtz(1, 1);
  const SimResult ref = one.simulate({.numElements = 20});
  EXPECT_NEAR(result.transferTimeUs, ref.transferTimeUs, 1e-9);
}

TEST(PlatformSimTest, TransferTimeMatchesBandwidth) {
  const Flow flow = compileHelmholtz(1, 1);
  const SimResult result =
      flow.simulate({.numElements = 1000, .axiBandwidthGBs = 4.0});
  const double bytes =
      1000.0 * static_cast<double>(flow.systemDesign().inputBytesPerElement +
                                   flow.systemDesign().outputBytesPerElement);
  EXPECT_NEAR(result.transferTimeUs, bytes / (4.0 * 1e3), 1e-6);
}

TEST(PlatformSimTest, KernelTimeScalesInverselyWithK) {
  const SimResult r1 = compileHelmholtz(1, 1).simulate({.numElements = 6400});
  const SimResult r8 = compileHelmholtz(8, 8).simulate({.numElements = 6400});
  const double ratio = r1.kernelTimeUs / r8.kernelTimeUs;
  EXPECT_GT(ratio, 7.5);
  EXPECT_LE(ratio, 8.0); // sub-linear: done-aggregation overhead
}

TEST(PlatformSimTest, HigherBandwidthOnlyShrinksTransfers) {
  const Flow flow = compileHelmholtz(16, 16);
  const SimResult slow =
      flow.simulate({.numElements = 1600, .axiBandwidthGBs = 2.0});
  const SimResult fast =
      flow.simulate({.numElements = 1600, .axiBandwidthGBs = 8.0});
  EXPECT_NEAR(slow.kernelTimeUs, fast.kernelTimeUs, 1e-9);
  EXPECT_NEAR(slow.transferTimeUs / fast.transferTimeUs, 4.0, 1e-6);
}

TEST(CpuModelTest, TimeTracksOpCounts) {
  eval::OpCounts counts;
  counts.fmul = 1000;
  counts.fadd = 1000;
  counts.loads = 2000;
  counts.stores = 100;
  counts.loopIterations = 1000;
  const double us = cpuTimeUsPerElement(counts);
  // (1000 + 1000 + 2000 + 70 + 500) cycles at 1200 MHz.
  EXPECT_NEAR(us, 4570.0 / 1200.0, 1e-9);
  EXPECT_NEAR(cpuTotalTimeUs(counts, 10), 10 * us, 1e-9);
}

TEST(CpuModelTest, ReferenceKernelCyclesPerMac) {
  // The A53 model should land near the calibrated ~4.7 cycles/MAC for
  // the reference loop nest (DESIGN.md §4).
  const Flow flow = compileHelmholtz();
  const eval::OpCounts counts =
      flow.softwareCounts(sched::ScheduleObjective::Software);
  const double cycles = cpuTimeUsPerElement(counts) * 1200.0;
  const double perMac = cycles / static_cast<double>(counts.fmul);
  EXPECT_GT(perMac, 3.5);
  EXPECT_LT(perMac, 6.0);
}

TEST(CpuModelTest, HlsStyleCodeIsSlowerOnCpu) {
  // Fig. 10's "SW HLS code" bar: the HLS-oriented loop order pays
  // read-modify-write accumulation on the CPU.
  const Flow flow = compileHelmholtz();
  const double refUs = cpuTimeUsPerElement(
      flow.softwareCounts(sched::ScheduleObjective::Software));
  const double hlsUs = cpuTimeUsPerElement(
      flow.softwareCounts(sched::ScheduleObjective::Hardware));
  EXPECT_GT(hlsUs, refUs);
  EXPECT_LT(hlsUs, 1.6 * refUs);
}

TEST(SimResultTest, Printing) {
  const SimResult result =
      compileHelmholtz(2, 2).simulate({.numElements = 10});
  const std::string text = result.str();
  EXPECT_NE(text.find("elements"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(PlatformSimTest, TimeDecompositionIsConserved) {
  // total = kernel + transfer - overlapped, and overlapped is zero for
  // blocking transfers.
  for (int m : {1, 4, 16}) {
    const SimResult r =
        compileHelmholtz(m, m).simulate({.numElements = 2000});
    EXPECT_EQ(r.overlappedTimeUs, 0.0);
    EXPECT_NEAR(r.totalTimeUs(), r.kernelTimeUs + r.transferTimeUs, 1e-9);
  }
}

TEST(PlatformSimTest, TotalSpeedupNeverExceedsAcceleratorSpeedup) {
  const SimResult base =
      compileHelmholtz(1, 1).simulate({.numElements = 50000});
  for (int m : {2, 4, 8, 16}) {
    const SimResult r =
        compileHelmholtz(m, m).simulate({.numElements = 50000});
    const double accel = base.kernelTimeUs / r.kernelTimeUs;
    const double total = base.totalTimeUs() / r.totalTimeUs();
    EXPECT_LE(total, accel) << m;
    EXPECT_GE(total, 1.0) << m;
  }
}

TEST(PlatformSimTest, ElementsScaleLinearly) {
  const Flow flow = compileHelmholtz(8, 8);
  const SimResult small = flow.simulate({.numElements = 800});
  const SimResult large = flow.simulate({.numElements = 8000});
  EXPECT_NEAR(large.totalTimeUs() / small.totalTimeUs(), 10.0, 1e-6);
}

// Regression guard for the headline result: speedups vs m=k=1 within
// 5% of the paper's Fig. 9 series.
struct Fig9Point {
  int m;
  double accel;
  double total;
};

class Fig9Regression : public ::testing::TestWithParam<Fig9Point> {};

TEST_P(Fig9Regression, SpeedupsMatchPaper) {
  const Fig9Point point = GetParam();
  const SimResult base =
      compileHelmholtz(1, 1).simulate({.numElements = 50000});
  const SimResult result =
      compileHelmholtz(point.m, point.m).simulate({.numElements = 50000});
  const double accel = base.kernelTimeUs / result.kernelTimeUs;
  const double total = base.totalTimeUs() / result.totalTimeUs();
  EXPECT_NEAR(accel, point.accel, point.accel * 0.05);
  EXPECT_NEAR(total, point.total, point.total * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Paper, Fig9Regression,
                         ::testing::Values(Fig9Point{2, 2.00, 1.96},
                                           Fig9Point{4, 3.97, 3.78},
                                           Fig9Point{8, 7.91, 7.09},
                                           Fig9Point{16, 15.76, 12.58}));

} // namespace
} // namespace cfd::sim
