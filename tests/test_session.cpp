// Tests for the cfd::Session service API (DESIGN.md §10): shared
// caches under concurrent compiles, exception-free error paths with
// structured diagnostics, session-default option round-trips, and the
// request/result surface (sweep, tune, artifact materialization).
#include "core/Session.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace cfd {
namespace {

TEST(SessionTest, ConcurrentCompilesShareTheStageCache) {
  Session session;
  // Warm the parse..memory-plan prefix once, so every concurrent
  // HLS-only variant below can adopt it (the acceptance hammer for the
  // TSan CI job: ≥8 threads against one session). Each thread drives
  // its compile through the async job queue — both the submission path
  // and the synchronous wait run concurrently against shared state.
  ASSERT_TRUE(session.compile(CompileRequest(test::kInverseHelmholtz)).ok());

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&session, &failures, t] {
      CompileRequest request(test::kInverseHelmholtz);
      FlowOptions options;
      options.hls.clockMHz = 120.0 + 10.0 * t; // distinct per thread
      request.options(options);
      const Job<CompileResult> job =
          session.submitCompile(std::move(request));
      const Expected<CompileResult>& result = job.wait();
      if (!result.ok() || result->flow().systemDesign().m <= 0 ||
          job.state() != JobState::Done)
        ++failures;
    });
  for (std::thread& thread : threads)
    thread.join();
  EXPECT_EQ(failures.load(), 0);

  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.compileRequests, kThreads + 1);
  // Job accounting must be consistent, not just the hit rates: nothing
  // was cancelled, so completed = submitted - cancelled = all of them,
  // and nothing may linger in the queue after every handle resolved.
  EXPECT_EQ(stats.jobsSubmitted, kThreads);
  EXPECT_EQ(stats.jobsCancelled, 0);
  EXPECT_EQ(stats.jobsCompleted, stats.jobsSubmitted - stats.jobsCancelled);
  EXPECT_EQ(stats.jobQueueDepth, 0);
  EXPECT_EQ(stats.jobsRunning, 0);
  // Every thread compiled a distinct configuration, so the whole-flow
  // cache cannot have served them — the stage cache must have: each
  // variant adopts the warmed parse..memory-plan prefix.
  EXPECT_GT(stats.stageCache.hits, 0);
  const double hitRate =
      static_cast<double>(stats.stageCache.hits) /
      static_cast<double>(stats.stageCache.hits + stats.stageCache.misses);
  EXPECT_GT(hitRate, 0.0);
}

TEST(SessionTest, ConcurrentIdenticalCompilesDeduplicate) {
  Session session;
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&session, &failures] {
      if (!session.compile(CompileRequest(test::kMatMul2D)).ok())
        ++failures;
    });
  for (std::thread& thread : threads)
    thread.join();
  EXPECT_EQ(failures.load(), 0);
  const Session::Stats stats = session.stats();
  // One thread compiled; everyone else hit the entry or joined the
  // in-flight compile.
  EXPECT_EQ(stats.flowCache.misses, 1);
  EXPECT_EQ(stats.flowCache.hits, kThreads - 1);
}

TEST(SessionTest, MalformedSourceReturnsParseDiagnosticsWithoutThrowing) {
  Session session;
  Expected<CompileResult> result =
      session.compile(CompileRequest("not a program"));
  ASSERT_FALSE(result.ok());
  ASSERT_GE(result.diagnostics().size(), 1u);
  bool sawLocatedParseError = false;
  for (const Diagnostic& diagnostic : result.diagnostics())
    if (diagnostic.severity == Severity::Error &&
        diagnostic.stage == "parse" && diagnostic.location.isValid())
      sawLocatedParseError = true;
  EXPECT_TRUE(sawLocatedParseError) << result.errorText();
  EXPECT_EQ(session.stats().failedRequests, 1);
}

TEST(SessionTest, SemanticErrorsCarryStageAndLocation) {
  Session session;
  const Expected<CompileResult> result =
      session.compile(CompileRequest("var output v : [3]\nv = missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.diagnostics().hasErrors());
  for (const Diagnostic& diagnostic : result.diagnostics()) {
    EXPECT_EQ(diagnostic.stage, "parse"); // frontend = the parse stage
    EXPECT_TRUE(diagnostic.location.isValid());
  }
}

TEST(SessionTest, InfeasibleConstraintsAreStageAttributedDiagnostics) {
  // m = 3, k = 2 violates the §V-B structural constraint inside system
  // generation — a post-frontend error with no source location, but a
  // stage of origin.
  Session session;
  CompileRequest request(test::kMatMul2D);
  FlowOptions options;
  options.system.memories = 3;
  options.system.kernels = 2;
  request.options(options);
  const Expected<CompileResult> result = session.compile(request);
  ASSERT_FALSE(result.ok());
  ASSERT_GE(result.diagnostics().size(), 1u);
  EXPECT_EQ(result.diagnostics()[0].stage, "sysgen");
  EXPECT_FALSE(result.diagnostics()[0].location.isValid());
}

TEST(SessionTest, DefaultOptionOverrideRoundTripsIntoTheResult) {
  SessionOptions sessionOptions;
  sessionOptions.defaults.hls.unrollFactor = 2;
  Session session(sessionOptions);

  // Session default applies...
  const Expected<CompileResult> withDefault =
      session.compile(CompileRequest(test::kInverseHelmholtz));
  ASSERT_TRUE(withDefault.ok()) << withDefault.errorText();
  EXPECT_EQ(withDefault->options().hls.unrollFactor, 2);

  // ...a named per-request override wins over the default...
  const Expected<CompileResult> withOverride = session.compile(
      CompileRequest(test::kInverseHelmholtz).set("unroll", "4"));
  ASSERT_TRUE(withOverride.ok()) << withOverride.errorText();
  EXPECT_EQ(withOverride->options().hls.unrollFactor, 4);

  // ...and setDefaultOptions changes the base for later requests.
  FlowOptions defaults = session.defaultOptions();
  defaults.hls.unrollFactor = 1;
  session.setDefaultOptions(defaults);
  const Expected<CompileResult> afterChange =
      session.compile(CompileRequest(test::kInverseHelmholtz));
  ASSERT_TRUE(afterChange.ok());
  EXPECT_EQ(afterChange->options().hls.unrollFactor, 1);
}

TEST(SessionTest, SuccessCarriesFrontendWarnings) {
  Session session;
  const Expected<CompileResult> result = session.compile(CompileRequest(
      "var input  A : [4 5]\n"
      "var input  B : [5 6]\n"
      "var input  X : [3 3]\n" // never used -> sema warning
      "var output C : [4 6]\n"
      "C = A # B . [[1 2]]\n"));
  ASSERT_TRUE(result.ok()) << result.errorText();
  ASSERT_GE(result.diagnostics().size(), 1u);
  EXPECT_FALSE(result.diagnostics().hasErrors());
  EXPECT_EQ(result.diagnostics()[0].severity, Severity::Warning);
  EXPECT_EQ(result.diagnostics()[0].stage, "parse");
  EXPECT_NE(result.diagnostics()[0].message.find("'X' is never used"),
            std::string::npos);
  // Warm repeat: the warnings live on the cached artifact.
  const Expected<CompileResult> warm = session.compile(CompileRequest(
      "var input  A : [4 5]\n"
      "var input  B : [5 6]\n"
      "var input  X : [3 3]\n"
      "var output C : [4 6]\n"
      "C = A # B . [[1 2]]\n"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cacheHit());
  EXPECT_EQ(warm.diagnostics().size(), result.diagnostics().size());
}

TEST(SessionTest, UnknownOverrideKeyIsAnOptionsDiagnostic) {
  Session session;
  const Expected<CompileResult> result = session.compile(
      CompileRequest(test::kMatMul2D).set("warp", "1"));
  ASSERT_FALSE(result.ok());
  ASSERT_GE(result.diagnostics().size(), 1u);
  EXPECT_EQ(result.diagnostics()[0].stage, "options");
}

TEST(SessionTest, MaterializedArtifactsMatchTheFlow) {
  Session session;
  const Expected<CompileResult> result = session.compile(
      CompileRequest(test::kInverseHelmholtz)
          .materialize(Artifacts::CCode | Artifacts::HostCode));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->cCode().empty());
  EXPECT_FALSE(result->hostCode().empty());
  EXPECT_TRUE(result->mnemosyneConfig().empty()); // not requested
  EXPECT_EQ(result->cCode(), result->flow().cCode());
}

TEST(SessionTest, RepeatedCompilesHitTheSessionCache) {
  Session session;
  const Expected<CompileResult> first =
      session.compile(CompileRequest(test::kMatMul2D));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cacheHit());
  const Expected<CompileResult> second =
      session.compile(CompileRequest(test::kMatMul2D));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cacheHit());
  // Same immutable flow underneath.
  EXPECT_EQ(first->sharedFlow().get(), second->sharedFlow().get());
}

TEST(SessionTest, SweepExpandsAxesOverTheSessionDefaults) {
  Session session;
  const Expected<SweepResult> swept = session.sweep(
      SweepRequest(test::kInverseHelmholtz)
          .axis("unroll", {"1", "2"})
          .axis("sharing", {"0", "1"}));
  ASSERT_TRUE(swept.ok()) << swept.errorText();
  ASSERT_EQ(swept->rows().size(), 4u);
  ASSERT_EQ(swept->labels.size(), 4u);
  EXPECT_EQ(swept->labels[0], "unroll=1 sharing=0");
  EXPECT_EQ(swept->labels[3], "unroll=2 sharing=1");
  for (const ExplorationRow& row : swept->rows())
    EXPECT_TRUE(row.ok()) << row.error;
  // The sweep compiled through the session cache: a repeat is all hits.
  const Expected<SweepResult> again = session.sweep(
      SweepRequest(test::kInverseHelmholtz)
          .axis("unroll", {"1", "2"})
          .axis("sharing", {"0", "1"}));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->exploration.cacheHitCount(), 4u);
}

TEST(SessionTest, SweepRejectsMixedAxesAndVariants) {
  Session session;
  const Expected<SweepResult> swept = session.sweep(
      SweepRequest(test::kMatMul2D)
          .axis("unroll", {"1"})
          .variants({FlowOptions{}}));
  ASSERT_FALSE(swept.ok());
  EXPECT_EQ(swept.diagnostics()[0].stage, "options");
}

TEST(SessionTest, TuneRunsThroughTheSessionPool) {
  Session session;
  const Expected<TuningReport> report = session.tune(
      TuneRequest(test::kMatMul2D)
          .axis("unroll", {"1", "2"})
          .objectives({"latency", "bram"}));
  ASSERT_TRUE(report.ok()) << report.errorText();
  EXPECT_EQ(report->points.size(), 2u);
  EXPECT_FALSE(report->frontier.empty());
  // Bad objective names are diagnostics, not exceptions.
  const Expected<TuningReport> bad = session.tune(
      TuneRequest(test::kMatMul2D).objectives({"carbon"}));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.diagnostics()[0].stage, "options");
}

TEST(SessionTest, StatsCountRequestsAndPoolState) {
  Session session(SessionOptions{.workers = 2});
  EXPECT_EQ(session.workerPool().threadCount(), 2);
  EXPECT_FALSE(session.workerPool().started());
  ASSERT_TRUE(session.compile(CompileRequest(test::kMatMul2D)).ok());
  // A single compile never starts the pool; a sweep with >1 job does.
  EXPECT_FALSE(session.workerPool().started());
  ASSERT_TRUE(session
                  .sweep(SweepRequest(test::kMatMul2D)
                             .axis("unroll", {"1", "2"}))
                  .ok());
  EXPECT_TRUE(session.workerPool().started());
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.compileRequests, 1);
  EXPECT_EQ(stats.sweepRequests, 1);
  EXPECT_EQ(stats.workerThreads, 2);
  EXPECT_TRUE(stats.workersStarted);
  EXPECT_FALSE(session.statsReport().empty());
}

} // namespace
} // namespace cfd
