// Cross-validation of the analytic HLS latency model against the
// cycle-true pipeline simulator.
#include "core/Flow.h"
#include "hls/PipelineSim.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd::hls {
namespace {

TEST(PipelineSimTest, HardwareScheduleSustainsIIOne) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  for (const auto& stmt : flow.schedule().statements) {
    const PipelineSimResult sim =
        simulatePipeline(flow.schedule(), stmt);
    EXPECT_EQ(sim.stallCycles, 0) << stmt.name;
    EXPECT_NEAR(sim.achievedII, 1.0, 1e-12) << stmt.name;
  }
}

TEST(PipelineSimTest, MatchesAnalyticCycleCounts) {
  const Flow flow = Flow::compile(test::kInverseHelmholtz);
  const auto& report = flow.kernelReport();
  for (std::size_t s = 0; s < flow.schedule().statements.size(); ++s) {
    const auto& stmt = flow.schedule().statements[s];
    const PipelineSimResult sim = simulatePipeline(flow.schedule(), stmt);
    // The analytic model adds kLoopFlattenOverhead; everything else must
    // agree exactly.
    EXPECT_EQ(sim.cycles + kLoopFlattenOverhead - 1,
              report.statements[s].cycles)
        << stmt.name;
  }
}

TEST(PipelineSimTest, ReferenceScheduleStallsOnAccumulator) {
  FlowOptions options;
  options.reschedule.permuteLoops = false;
  options.reschedule.reorderStatements = false;
  const Flow flow = Flow::compile(test::kInverseHelmholtz, options);
  const auto& report = flow.kernelReport();
  for (std::size_t s = 0; s < flow.schedule().statements.size(); ++s) {
    const auto& stmt = flow.schedule().statements[s];
    if (stmt.kind != ir::OpKind::Contract || !stmt.needsInit)
      continue;
    const PipelineSimResult sim = simulatePipeline(flow.schedule(), stmt);
    EXPECT_GT(sim.stallCycles, 0) << stmt.name;
    // The register accumulator carries every iteration only while the
    // same output element accumulates; across output elements the
    // pipeline refills, so the average II sits between 1 and the adder
    // latency but near the analytic bound for long reductions.
    EXPECT_GT(sim.achievedII, 0.8 * report.statements[s].ii) << stmt.name;
    EXPECT_LE(sim.achievedII, report.statements[s].ii) << stmt.name;
  }
}

TEST(PipelineSimTest, SmallExtentRmwMatchesAnalyticII) {
  // p+1 = 4: the innermost trip (4) cannot hide the RMW latency (8),
  // so the analytic model predicts II = 2.
  const Flow flow = Flow::compile(test::inverseHelmholtzSource(4));
  const auto& report = flow.kernelReport();
  for (std::size_t s = 0; s < flow.schedule().statements.size(); ++s) {
    const auto& stmt = flow.schedule().statements[s];
    if (stmt.kind != ir::OpKind::Contract || !stmt.needsInit)
      continue;
    const PipelineSimResult sim = simulatePipeline(flow.schedule(), stmt);
    EXPECT_EQ(report.statements[s].ii, 2) << stmt.name;
    // The simulator stalls only on actual hazards, so its average II
    // can be slightly better than the conservative analytic bound, but
    // never worse.
    EXPECT_LE(sim.achievedII, report.statements[s].ii + 1e-9)
        << stmt.name;
    EXPECT_GT(sim.achievedII, 1.0) << stmt.name;
  }
}

TEST(PipelineSimTest, EntryWiseHasNoHazards) {
  const Flow flow = Flow::compile(test::kEntryWiseChain);
  for (const auto& stmt : flow.schedule().statements) {
    const PipelineSimResult sim = simulatePipeline(flow.schedule(), stmt);
    EXPECT_EQ(sim.stallCycles, 0) << stmt.name;
  }
}

TEST(PipelineSimTest, RequestedIIThrottlesIssue) {
  const Flow flow = Flow::compile(test::kMatMul2D);
  const auto& stmt = flow.schedule().statements[0];
  const PipelineSimResult ii1 = simulatePipeline(flow.schedule(), stmt, 1);
  const PipelineSimResult ii4 = simulatePipeline(flow.schedule(), stmt, 4);
  EXPECT_NEAR(ii4.achievedII, 4.0, 1e-12);
  EXPECT_GT(ii4.cycles, ii1.cycles);
}

} // namespace
} // namespace cfd::hls
