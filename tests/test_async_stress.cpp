// Concurrency stress for the async job queue (DESIGN.md §11), run
// under ThreadSanitizer in CI alongside test_session and
// test_incremental: many submitter threads hammer ONE session with
// mixed-priority jobs (some cancelled mid-flight) and the test asserts
// the accounting that a job queue must never get wrong — no lost and
// no duplicated results — plus a monotonically non-decreasing
// StageCache hit rate as the waves warm the cache.
#include "core/Session.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace cfd {
namespace {

/// A small palette of distinct configurations, so jobs exercise both
/// the FlowCache (repeats) and the StageCache (prefix-sharing
/// variants).
FlowOptions variantFor(int index) {
  FlowOptions options;
  options.hls.clockMHz = 100.0 + 25.0 * (index % 4);
  options.memory.enableSharing = (index % 2) == 0;
  return options;
}

JobPriority priorityFor(int index) {
  switch (index % 3) {
  case 0: return JobPriority::Low;
  case 1: return JobPriority::Normal;
  default: return JobPriority::High;
  }
}

TEST(AsyncStressTest, SixteenThreadsMixedPrioritiesAgainstOneSession) {
  constexpr int kThreads = 16;
  constexpr int kJobsPerThread = 64;
  Session session(SessionOptions{.workers = 4});

  std::vector<std::vector<Job<CompileResult>>> perThread(kThreads);
  std::atomic<int> cancelRequests{0};
  {
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      submitters.emplace_back([&session, &perThread, &cancelRequests, t] {
        std::vector<Job<CompileResult>>& mine = perThread[t];
        mine.reserve(kJobsPerThread);
        for (int j = 0; j < kJobsPerThread; ++j) {
          const int index = t * kJobsPerThread + j;
          CompileRequest request(test::kInverseHelmholtz);
          request.options(variantFor(index));
          mine.push_back(session.submitCompile(
              std::move(request), {.priority = priorityFor(index)}));
          // Every 8th job gets a cancellation racing its execution —
          // before, mid, or after; all three must stay consistent.
          if (index % 8 == 0 && mine.back().cancel())
            ++cancelRequests;
        }
      });
    for (std::thread& submitter : submitters)
      submitter.join();
  }
  session.drainJobs();

  // No lost results: every handle resolved, and a Done job always
  // carries a usable result for its exact configuration.
  std::int64_t done = 0;
  std::int64_t cancelled = 0;
  for (const auto& jobs : perThread)
    for (const Job<CompileResult>& job : jobs) {
      ASSERT_TRUE(job.poll());
      const Expected<CompileResult>& result = job.wait();
      switch (job.state()) {
      case JobState::Done:
        ++done;
        ASSERT_TRUE(result.ok()) << result.errorText();
        EXPECT_GT(result->flow().systemDesign().m, 0);
        break;
      case JobState::Cancelled:
        ++cancelled;
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.diagnostics()[0].stage, "job-queue");
        break;
      default:
        FAIL() << "unresolved job after drain: "
               << jobStateName(job.state());
      }
    }

  // No duplicated or dropped accounting: the counters match the handle
  // census exactly, and completed = submitted - cancelled.
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.jobsSubmitted, kThreads * kJobsPerThread);
  EXPECT_EQ(stats.jobsCompleted, done);
  EXPECT_EQ(stats.jobsCancelled, cancelled);
  EXPECT_EQ(stats.jobsCompleted, stats.jobsSubmitted - stats.jobsCancelled);
  EXPECT_EQ(stats.jobQueueDepth, 0);
  EXPECT_EQ(stats.jobsRunning, 0);
  // Only 8 distinct configurations exist, so deduplication must keep
  // the compile count tiny next to ~1024 jobs. (Above 8 is possible —
  // a cancelled in-flight owner forces its joiners to recompile — but
  // anywhere near the job count would mean dedup is broken.)
  EXPECT_LE(stats.flowCache.misses, 64);
}

TEST(AsyncStressTest, StageCacheHitRateIsMonotonicAcrossWaves) {
  // Waves of the same 8 configurations against one session: as the
  // caches warm, the cumulative StageCache hit rate must never drop.
  Session session(SessionOptions{.workers = 4});
  double previousRate = 0.0;
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<Job<CompileResult>> jobs;
    for (int i = 0; i < 32; ++i) {
      CompileRequest request(test::kInverseHelmholtz);
      request.options(variantFor(i));
      jobs.push_back(session.submitCompile(std::move(request),
                                           {.priority = priorityFor(i)}));
    }
    for (const Job<CompileResult>& job : jobs)
      ASSERT_TRUE(job.wait().ok()) << job.wait().errorText();

    const StageCache::Stats stats = session.stats().stageCache;
    const std::int64_t lookups = stats.hits + stats.misses;
    // Wave 1 may be all FlowCache hits (no stage lookups); guard /0.
    const double rate =
        lookups == 0 ? previousRate
                     : static_cast<double>(stats.hits) /
                           static_cast<double>(lookups);
    EXPECT_GE(rate, previousRate - 1e-12)
        << "hit rate dropped in wave " << wave;
    previousRate = rate;
  }
  EXPECT_GT(previousRate, 0.0);
}

} // namespace
} // namespace cfd
