// Tests for the model-guided search layer (DESIGN.md §14): surrogate
// fitting and determinism, feature clustering, the cheap stage-prefix
// proxy, warm-start round-trips, the Model tuning strategy's
// determinism contract, and the pruned-point report serialization.
#include "core/Session.h"
#include "core/Tuner.h"
#include "search/FeatureCluster.h"
#include "search/Halving.h"
#include "search/Surrogate.h"
#include "search/WarmStart.h"
#include "support/Error.h"
#include "support/Json.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace cfd {
namespace {

// ---- Surrogate regression ----

search::FeatureVector fv(std::vector<double> values) {
  search::FeatureVector features;
  features.values = std::move(values);
  return features;
}

TEST(SurrogateTest, RecoversALinearCostModel) {
  // y = 3*x0 - 2*x1 + 1, observed on a small grid: the ridge solve
  // must recover it closely enough to rank any pair correctly.
  search::Surrogate surrogate(2);
  for (double x0 : {0.0, 1.0, 2.0, 3.0})
    for (double x1 : {0.0, 1.0, 2.0})
      surrogate.observe(fv({x0, x1}), 3.0 * x0 - 2.0 * x1 + 1.0);
  EXPECT_EQ(surrogate.observationCount(), 12u);
  EXPECT_NEAR(surrogate.predict(fv({1.5, 0.5})), 4.5, 0.05);
  EXPECT_NEAR(surrogate.predict(fv({0.0, 2.0})), -3.0, 0.05);
  // Ranking: the model must order unseen points by the true cost.
  EXPECT_LT(surrogate.predict(fv({0.5, 2.0})),
            surrogate.predict(fv({2.5, 0.0})));
}

TEST(SurrogateTest, PredictionsAreDeterministicAndFiniteWhenStarved) {
  search::Surrogate a(3), b(3);
  EXPECT_EQ(a.predict(fv({1, 2, 3})), 0.0); // no observations at all
  // One observation cannot determine 4 coefficients; the ridge term
  // still yields a finite prediction, and two identically-fed models
  // agree bit for bit.
  for (search::Surrogate* s : {&a, &b}) {
    s->observe(fv({1.0, 0.5, 2.0}), 7.0);
    s->observe(fv({2.0, 0.25, 1.0}), 9.0);
  }
  const double pa = a.predict(fv({1.5, 0.4, 1.5}));
  EXPECT_TRUE(std::isfinite(pa));
  EXPECT_EQ(pa, b.predict(fv({1.5, 0.4, 1.5})));
}

TEST(SurrogateTest, IgnoresNonFiniteScores) {
  search::Surrogate surrogate(1);
  surrogate.observe(fv({1.0}), std::numeric_limits<double>::infinity());
  EXPECT_EQ(surrogate.observationCount(), 0u);
  surrogate.observe(fv({1.0}), 5.0);
  EXPECT_EQ(surrogate.observationCount(), 1u);
  EXPECT_TRUE(std::isfinite(surrogate.predict(fv({2.0}))));
}

TEST(SurrogateTest, EncodePointDimensionMatchesTheSpace) {
  TuneSpace space;
  space.axes.push_back(TuneAxis{"unroll", {"1", "2", "4"}});
  space.axes.push_back(TuneAxis{"layout", {"rowmajor", "colmajor"}});
  ASSERT_EQ(search::featureCountFor(space), 2 * 2 + 3);

  FlowOptions options;
  applyTuneParam(options, "unroll", "4");
  const search::FeatureVector features =
      search::encodePoint(space, {2, 1}, options);
  EXPECT_EQ(features.values.size(), search::featureCountFor(space));
  // Axis 0 ("4", last of three): position 1.0, numeric log2(1+4).
  EXPECT_DOUBLE_EQ(features.values[0], 1.0);
  EXPECT_DOUBLE_EQ(features.values[1], std::log2(5.0));
  // Axis 1 ("colmajor"): categorical, numeric slot is 0.
  EXPECT_DOUBLE_EQ(features.values[2], 1.0);
  EXPECT_DOUBLE_EQ(features.values[3], 0.0);
}

// ---- Farthest-point clustering ----

TEST(FeatureClusterTest, SpreadsRepresentativesDeterministically) {
  // Three tight groups on a line; three clusters must pick one
  // representative in each, identically on every call.
  std::vector<search::FeatureVector> points;
  for (double base : {0.0, 10.0, 20.0})
    for (double offset : {0.0, 0.1, 0.2})
      points.push_back(fv({base + offset}));

  const search::Clustering a = search::clusterByFeatures(points, 3, 42);
  const search::Clustering b = search::clusterByFeatures(points, 3, 42);
  EXPECT_EQ(a.representatives, b.representatives);
  EXPECT_EQ(a.assignment, b.assignment);
  ASSERT_EQ(a.representatives.size(), 3u);
  // One representative per group of three.
  std::vector<int> perGroup(3, 0);
  for (std::size_t rep : a.representatives)
    ++perGroup[rep / 3];
  EXPECT_EQ(perGroup, (std::vector<int>{1, 1, 1}));
  // Every point is assigned to the cluster of its own group's center.
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(a.representatives[a.assignment[i]] / 3, i / 3) << i;
}

TEST(FeatureClusterTest, DuplicatePointsCollapseAndSeedPicksTheStart) {
  const std::vector<search::FeatureVector> points = {
      fv({1.0}), fv({1.0}), fv({1.0})};
  const search::Clustering clustering =
      search::clusterByFeatures(points, 3, 0);
  // All duplicates: one cluster no matter how many were requested.
  EXPECT_EQ(clustering.representatives.size(), 1u);

  const std::vector<search::FeatureVector> spread = {
      fv({0.0}), fv({5.0}), fv({9.0})};
  EXPECT_EQ(search::clusterByFeatures(spread, 1, 1).representatives,
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(search::clusterByFeatures(spread, 1, 2).representatives,
            (std::vector<std::size_t>{2}));
}

// ---- Halving: proxy score and survivor selection ----

TEST(HalvingTest, SelectSmallestKeepsLowIndicesOnTies) {
  const std::vector<double> scores = {5.0, 1.0, 5.0, 1.0, 0.5};
  EXPECT_EQ(search::selectSmallest(scores, 3),
            (std::vector<std::size_t>{1, 3, 4}));
  // Tie at the cut (the two 5.0s): the lower index survives.
  EXPECT_EQ(search::selectSmallest(scores, 4),
            (std::vector<std::size_t>{0, 1, 3, 4}));
  EXPECT_EQ(search::selectSmallest(scores, 99).size(), scores.size());
  EXPECT_TRUE(search::selectSmallest({}, 3).empty());
}

TEST(HalvingTest, ProxyScoreTracksTheUnrollKnobWithoutExpensiveStages) {
  Session session;
  FlowOptions slow, fast;
  applyTuneParam(slow, "unroll", "1");
  applyTuneParam(fast, "unroll", "4");
  const search::ProxyResult a =
      search::cheapProxyScore(session, test::kMatMul2D, slow, {});
  const search::ProxyResult b =
      search::cheapProxyScore(session, test::kMatMul2D, fast, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a.score, 0.0);
  // More unroll lanes amortize the datapath work: a strictly better
  // proxy score, computed from op counts alone.
  EXPECT_LT(b.score, a.score);
  // Deterministic arithmetic: same inputs, same score.
  EXPECT_EQ(search::cheapProxyScore(session, test::kMatMul2D, slow, {}).score,
            a.score);
}

TEST(HalvingTest, DemotedPrefixStaysAdoptableInTheStageCache) {
  Session session;
  const FlowOptions base;
  ASSERT_TRUE(
      search::cheapProxyScore(session, test::kMatMul2D, base, {}).ok());
  // The proxy ran parse..optimize only, publishing that prefix. A full
  // compile of the same point must adopt it rather than re-running.
  const ExplorationResult batch =
      explore(session, test::kMatMul2D, {base}, {});
  ASSERT_TRUE(batch.rows[0].ok()) << batch.rows[0].error;
  EXPECT_GE(batch.rows[0].stagesAdopted, 3);
}

TEST(HalvingTest, ProxyReportsPrefixFailuresAsInfiniteScore) {
  Session session;
  const search::ProxyResult result =
      search::cheapProxyScore(session, "var input x : [", {}, {});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(std::isinf(result.score));
  EXPECT_FALSE(result.error.empty());
}

// ---- Structural pre-filter edge cases ----

TEST(SearchFeasibilityTest, EdgeCasesOfTheMkContract) {
  FlowOptions options;
  // k > m: each accelerator needs its own memory.
  applyTuneParam(options, "m", "2");
  applyTuneParam(options, "k", "4");
  EXPECT_NE(checkStructuralFeasibility(options), "");
  // m == k boundary: batch 1 is a power of two — feasible.
  applyTuneParam(options, "m", "4");
  applyTuneParam(options, "k", "4");
  EXPECT_EQ(checkStructuralFeasibility(options), "");
  applyTuneParam(options, "m", "1");
  applyTuneParam(options, "k", "1");
  EXPECT_EQ(checkStructuralFeasibility(options), "");
  // m a multiple of k but not a power-of-two multiple.
  applyTuneParam(options, "m", "12");
  applyTuneParam(options, "k", "4");
  EXPECT_NE(checkStructuralFeasibility(options), "");
  // ... and the matching power-of-two multiple is feasible.
  applyTuneParam(options, "m", "16");
  EXPECT_EQ(checkStructuralFeasibility(options), "");
}

// ---- Strategy parsing ----

TEST(SearchStrategyTest, ModelParsesAndTheErrorEnumeratesEveryName) {
  EXPECT_EQ(searchStrategyByName("model"), SearchStrategy::Model);
  EXPECT_STREQ(searchStrategyName(SearchStrategy::Model), "model");
  try {
    searchStrategyByName("annealing");
    FAIL() << "expected FlowError";
  } catch (const FlowError& e) {
    const std::string message = e.what();
    for (const char* name : {"exhaustive", "random", "hillclimb", "model"})
      EXPECT_NE(message.find(name), std::string::npos) << name;
  }
}

TEST(SearchObjectiveTest, BuiltinNamesBackTheLookupErrorMessage) {
  const std::vector<std::string>& names = builtinObjectiveNames();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names)
    EXPECT_NO_THROW(objectiveByName(name)) << name;
  try {
    objectiveByName("throughput");
    FAIL() << "expected FlowError";
  } catch (const FlowError& e) {
    for (const std::string& name : names)
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos) << name;
  }
}

// ---- The Model tuning strategy ----

TuneSpace modelSpace() {
  TuneSpace space;
  space.axes.push_back(TuneAxis{"unroll", {"1", "2", "4"}});
  space.axes.push_back(TuneAxis{"m", {"4", "8"}});
  space.axes.push_back(TuneAxis{"k", {"1", "2"}});
  space.axes.push_back(TuneAxis{"sharing", {"0", "1"}});
  return space;
}

std::vector<std::string> labels(const TuningReport& report) {
  std::vector<std::string> out;
  for (const TunedPoint& point : report.points)
    out.push_back(point.label());
  return out;
}

TEST(ModelStrategyTest, CompilesFewerPointsThanExhaustive) {
  Session exhaustiveSession, modelSession;
  const TuningReport full =
      tune(exhaustiveSession, test::kMatMul2D, modelSpace(), {});

  TunerOptions options;
  options.strategy = SearchStrategy::Model;
  options.seed = 3;
  const TuningReport model =
      tune(modelSession, test::kMatMul2D, modelSpace(), options);

  EXPECT_LT(model.points.size(), full.points.size());
  EXPECT_FALSE(model.modelRounds.empty());
  EXPECT_EQ(model.modelRounds.front().round, 0u); // seeded from clusters
  std::size_t compiled = 0;
  for (const auto& round : model.modelRounds) {
    compiled += round.compiled;
    if (round.round > 0) {
      EXPECT_GT(round.predictions, 0u);
      EXPECT_GT(round.proxyEvaluations, 0u);
    }
  }
  EXPECT_EQ(compiled, model.points.size());
  EXPECT_FALSE(model.frontier.empty());
}

TEST(ModelStrategyTest, IsSeedDeterministicAcrossWorkerCounts) {
  TunerOptions base;
  base.strategy = SearchStrategy::Model;
  base.seed = 99;

  Session sessionA, sessionB(SessionOptions{.workers = 4});
  TunerOptions a = base;
  a.workers = 1;
  TunerOptions b = base;
  b.workers = 4;

  const TuningReport first =
      tune(sessionA, test::kMatMul2D, modelSpace(), a);
  const TuningReport second =
      tune(sessionB, test::kMatMul2D, modelSpace(), b);

  EXPECT_EQ(labels(first), labels(second));
  EXPECT_EQ(first.frontier, second.frontier);
  for (std::size_t i = 0; i < first.points.size(); ++i)
    EXPECT_EQ(first.points[i].scores, second.points[i].scores);
  ASSERT_EQ(first.modelRounds.size(), second.modelRounds.size());
  for (std::size_t i = 0; i < first.modelRounds.size(); ++i) {
    EXPECT_EQ(first.modelRounds[i].compiled,
              second.modelRounds[i].compiled);
    EXPECT_EQ(first.modelRounds[i].proxyDemoted,
              second.modelRounds[i].proxyDemoted);
  }
}

TEST(ModelStrategyTest, RejectsAnOutOfRangeKeepFraction) {
  TunerOptions options;
  options.strategy = SearchStrategy::Model;
  options.keepFraction = 0.0;
  Session session;
  EXPECT_THROW(tune(session, test::kMatMul2D, modelSpace(), options),
               FlowError);
  options.keepFraction = 1.5;
  EXPECT_THROW(tune(session, test::kMatMul2D, modelSpace(), options),
               FlowError);
}

// ---- Warm start ----

TEST(WarmStartTest, RoundTripsAReportWithZeroJsonLoss) {
  Session session;
  TunerOptions options;
  options.strategy = SearchStrategy::Model;
  options.seed = 5;
  const TuningReport first =
      tune(session, test::kMatMul2D, modelSpace(), options);
  ASSERT_GT(first.feasibleCount, 0u);

  // Every feasible point survives the JSON round-trip with its exact
  // primary score (shortest-round-trip doubles, support/Json.h).
  const std::vector<search::WarmStartPoint> loaded =
      search::loadWarmStart(first.jsonText(), first.objectives.front());
  ASSERT_EQ(loaded.size(), first.feasibleCount);
  std::size_t cursor = 0;
  for (const TunedPoint& point : first.points) {
    if (!point.row.ok())
      continue;
    EXPECT_EQ(loaded[cursor].params, point.params);
    EXPECT_EQ(loaded[cursor].score, point.scores.front()); // bit-exact
    ++cursor;
  }
}

TEST(WarmStartTest, PreFitsTheSecondRunAndSkipsSeeding) {
  Session firstSession;
  TunerOptions options;
  options.strategy = SearchStrategy::Model;
  options.seed = 5;
  const TuningReport first =
      tune(firstSession, test::kMatMul2D, modelSpace(), options);
  ASSERT_GE(first.feasibleCount, 4u);

  Session secondSession;
  TunerOptions warm = options;
  warm.warmStartJson = first.jsonText();
  const TuningReport second =
      tune(secondSession, test::kMatMul2D, modelSpace(), warm);

  EXPECT_EQ(second.warmStartPoints, first.feasibleCount);
  // Enough prior observations: no round-0 cluster seeding, straight to
  // the halving rounds — the repeat tune skips the exploration phase.
  ASSERT_FALSE(second.modelRounds.empty());
  EXPECT_GT(second.modelRounds.front().round, 0u);
  EXPECT_LT(second.points.size(), first.points.size());
}

TEST(WarmStartTest, RejectsMalformedDocuments) {
  EXPECT_THROW(search::loadWarmStart("not json", "latency"), FlowError);
  EXPECT_THROW(search::loadWarmStart("{\"schema\": \"x\"}", "latency"),
               FlowError);
  EXPECT_THROW(
      search::readWarmStartFile("/nonexistent/warm.json", "latency"),
      FlowError);
  // A report scored under different objectives is valid but empty.
  EXPECT_TRUE(
      search::loadWarmStart("{\"points\": []}", "latency").empty());
}

// ---- Pruned points in the JSON report ----

TEST(PrunedReportTest, InfeasiblePointsKeepTheirReasonInTheJson) {
  TuneSpace space;
  space.axes.push_back(TuneAxis{"m", {"4", "6"}});
  space.axes.push_back(TuneAxis{"k", {"4", "5"}});

  Session session;
  const TuningReport report = tune(session, test::kMatMul2D, space, {});
  // Feasible: only (m=4, k=4). Pruned: (4,5), (6,4), (6,5).
  EXPECT_EQ(report.points.size(), 1u);
  ASSERT_EQ(report.prunedPoints.size(), 3u);
  EXPECT_EQ(report.prunedCount, report.prunedPoints.size());
  for (const TuningReport::PrunedPoint& pruned : report.prunedPoints)
    EXPECT_FALSE(pruned.reason.empty());

  const json::Value doc = json::Value::parse(report.jsonText());
  // Evaluated points first (frontier indices stay valid), pruned after.
  ASSERT_EQ(doc.at("points").size(),
            report.points.size() + report.prunedPoints.size());
  for (std::size_t i = 0; i < report.prunedPoints.size(); ++i) {
    const json::Value& entry =
        doc.at("points").at(report.points.size() + i);
    EXPECT_FALSE(entry.at("feasible").asBool());
    EXPECT_TRUE(entry.at("pruned").asBool());
    EXPECT_EQ(entry.at("error").asString(),
              report.prunedPoints[i].reason);
    EXPECT_FALSE(entry.contains("scores"));
  }
  // The evaluated entries carry no "pruned" marker.
  EXPECT_FALSE(doc.at("points").at(0u).contains("pruned"));
  EXPECT_EQ(doc.at("stats").at("pruned").asInt(), 3);
}

} // namespace
} // namespace cfd
