// Tests for the distributed sweep coordinator (DESIGN.md §16): the
// byte-identity contract against a single-process sweep, fault
// injection (a worker SIGKILLed mid-chunk, a stopped straggler
// demoted by the inactivity deadline), failure modes (no reachable
// worker, every worker lost, bad params failing fast), and an
// EINTR-storm over an 8-client flood that exercises the retrying
// serve I/O loops under a ~1 ms interval timer. The TSan CI job runs
// this suite alongside test_serve and test_async.
#include "dist/Coordinator.h"
#include "dist/WorkerPoolSpawner.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/time.h>
#include <unistd.h>

namespace cfd::dist {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch dir with short socket paths (sun_path is ~107
/// bytes, so no test-name-derived paths).
class DistTest : public ::testing::Test {
protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("cfd_dist_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// The shared design space: 3 x 2 = 6 points, several chunks under
  /// any worker count, and fast to compile.
  static std::vector<TuneAxis> axes() {
    return {{"unroll", {"1", "2", "4"}}, {"m", {"2", "4"}}};
  }

  /// A single-process sweep over the same space, rendered through the
  /// same canonical report — the reference bytes.
  static std::string localReport(const std::string& source) {
    Session session(SessionOptions{.workers = 2});
    SweepRequest request(source);
    for (const TuneAxis& axis : axes())
      request.axis(axis.key, axis.values);
    const Expected<SweepResult> swept = session.sweep(request);
    EXPECT_TRUE(swept.ok()) << swept.errorText();
    return SweepCoordinator::fromSweepResult(*swept).reportText();
  }

  DistSweepOptions optionsFor(const WorkerPoolSpawner& pool,
                              const std::string& source) {
    DistSweepOptions options;
    options.source = source;
    options.axes = axes();
    options.workerSockets = pool.socketPaths();
    return options;
  }

  std::string root_;
  static inline std::atomic<int> counter_{0};
};

TEST_F(DistTest, ShardedSweepIsByteIdenticalToLocal) {
  const std::string source = test::kInverseHelmholtz;
  WorkerPoolSpawner pool({.workers = 2, .socketDir = root_});
  const Expected<bool> started = pool.start();
  ASSERT_TRUE(started.ok()) << started.errorText();

  DistSweepOptions options = optionsFor(pool, source);
  options.chunkSize = 2; // 3 chunks over 2 workers: real stealing
  std::atomic<std::size_t> lastDone{0};
  options.onProgress = [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 6u);
    lastDone = done;
  };
  const Expected<DistSweepResult> result =
      SweepCoordinator(options).run();
  ASSERT_TRUE(result.ok()) << result.errorText();

  // The whole point: merged bytes == single-process bytes.
  EXPECT_EQ(result->reportText(), localReport(source));
  EXPECT_EQ(lastDone.load(), 6u);
  EXPECT_EQ(result->stats.workersConnected, 2);
  EXPECT_EQ(result->stats.workersLost, 0);
  EXPECT_EQ(result->stats.chunksDispatched, 3);
  EXPECT_GE(result->stats.progressEvents, 6); // >= one per point
  EXPECT_FALSE(result->frontier.empty());
}

TEST_F(DistTest, SigkilledWorkerMidChunkStillCompletesIdentically) {
  const std::string source = test::kInverseHelmholtz;
  WorkerPoolSpawner pool({.workers = 3, .socketDir = root_});
  ASSERT_TRUE(pool.start().ok());

  DistSweepOptions options = optionsFor(pool, source);
  options.chunkSize = 1; // every point its own chunk: kill lands mid-sweep
  std::once_flag killed;
  options.onProgress = [&](std::size_t, std::size_t) {
    // First sign of life -> SIGKILL a worker. Its in-flight chunk (or
    // its next one) dies with it and must be re-run elsewhere.
    std::call_once(killed, [&] { pool.kill(0, SIGKILL); });
  };
  const Expected<DistSweepResult> result =
      SweepCoordinator(options).run();
  ASSERT_TRUE(result.ok()) << result.errorText();

  // Full point count, identical frontier and bytes, and the loss is
  // visible in the stats.
  EXPECT_EQ(result->rows.size(), 6u);
  EXPECT_EQ(result->reportText(), localReport(source));
  EXPECT_GE(result->stats.workersLost, 1);
}

TEST_F(DistTest, StoppedStragglerIsDemotedAndSweepCompletes) {
  const std::string source = test::kInverseHelmholtz;
  WorkerPoolSpawner pool({.workers = 2, .socketDir = root_});
  ASSERT_TRUE(pool.start().ok());
  // SIGSTOP one worker: it keeps its listening socket (connects
  // succeed, sends buffer) but never answers — the canonical
  // straggler. The inactivity deadline must cut it off and move its
  // chunk to the live worker.
  pool.kill(0, SIGSTOP);

  DistSweepOptions options = optionsFor(pool, source);
  options.chunkDeadlineMillis = 400;
  const Expected<DistSweepResult> result =
      SweepCoordinator(options).run();
  // SIGKILL the stopped worker before stopAll so teardown never waits
  // out the graceful-drain window on a process that cannot drain.
  pool.kill(0, SIGKILL);
  ASSERT_TRUE(result.ok()) << result.errorText();

  EXPECT_EQ(result->reportText(), localReport(source));
  EXPECT_GE(result->stats.workersDemoted, 1);
  EXPECT_GE(result->stats.chunksRetried, 1);
}

TEST_F(DistTest, AllWorkersLostFailsWithDiagnostics) {
  WorkerPoolSpawner pool({.workers = 1, .socketDir = root_});
  ASSERT_TRUE(pool.start().ok());

  DistSweepOptions options = optionsFor(pool, test::kInverseHelmholtz);
  std::once_flag killed;
  options.onProgress = [&](std::size_t, std::size_t) {
    std::call_once(killed, [&] { pool.kill(0, SIGKILL); });
  };
  const Expected<DistSweepResult> result =
      SweepCoordinator(options).run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errorText().find("all workers were lost"),
            std::string::npos)
      << result.errorText();
}

TEST_F(DistTest, UnreachableWorkersFailFast) {
  DistSweepOptions options;
  options.source = test::kInverseHelmholtz;
  options.axes = axes();
  options.workerSockets = {root_ + "/nobody.sock"};
  const Expected<DistSweepResult> result =
      SweepCoordinator(options).run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errorText().find("no worker is reachable"),
            std::string::npos)
      << result.errorText();
}

TEST_F(DistTest, BadAxisValuesFailBeforeAnySocketIsTouched) {
  DistSweepOptions options;
  options.source = test::kInverseHelmholtz;
  options.axes = {{"warp", {"1"}}};
  // Deliberately no daemon behind this path: validation must fail
  // before connecting, so the bad key is one error, not N refusals.
  options.workerSockets = {root_ + "/nobody.sock"};
  const Expected<DistSweepResult> result =
      SweepCoordinator(options).run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errorText().find("unknown parameter 'warp'"),
            std::string::npos)
      << result.errorText();
}

// ---------------------------------------------------------------------
// EINTR storm: a ~1 ms interval timer with a no-op, no-SA_RESTART
// SIGALRM handler makes every blocking send/recv in the process fail
// with EINTR constantly — on the in-process server's threads and the
// flooding clients alike. The retrying I/O loops (serve/Io.h) must
// make all of it invisible.
// ---------------------------------------------------------------------

extern "C" void onAlarmNoop(int) {}

TEST_F(DistTest, EintrStormDoesNotDropAnyFloodResponses) {
  struct sigaction action{};
  action.sa_handler = onAlarmNoop; // deliberately NOT SA_RESTART
  ASSERT_EQ(::sigaction(SIGALRM, &action, nullptr), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 1000;
  storm.it_value.tv_usec = 1000;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &storm, nullptr), 0);

  {
    Session session(SessionOptions{.workers = 2});
    serve::Server server(session, {.socketPath = root_ + "/d.sock"});
    ASSERT_TRUE(server.start().ok());

    constexpr int kClients = 8;
    constexpr int kCallsPerClient = 5;
    std::atomic<int> okCount{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i)
      threads.emplace_back([&, i] {
        Expected<serve::Client> client =
            serve::Client::connect(root_ + "/d.sock");
        ASSERT_TRUE(client.ok()) << client.errorText();
        for (int call = 0; call < kCallsPerClient; ++call) {
          serve::Request request;
          request.kind = serve::RequestKind::Compile;
          request.source = test::kInverseHelmholtz;
          request.params = {{"unroll", std::to_string(1 << (i % 4))}};
          const Expected<serve::Response> response =
              client->call(std::move(request));
          ASSERT_TRUE(response.ok()) << response.errorText();
          ASSERT_TRUE(response->ok) << response->encode();
          ++okCount;
        }
      });
    for (std::thread& thread : threads)
      thread.join();
    EXPECT_EQ(okCount.load(), kClients * kCallsPerClient);

    server.requestStop();
    server.join();
    const serve::Server::Stats stats = server.stats();
    EXPECT_EQ(stats.requestsReceived, stats.responsesSent);
    EXPECT_EQ(stats.requestsReceived, kClients * kCallsPerClient);
    EXPECT_EQ(stats.protocolErrors, 0);
  }

  itimerval off{};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &off, nullptr), 0);
  ::signal(SIGALRM, SIG_DFL);
}

} // namespace
} // namespace cfd::dist
