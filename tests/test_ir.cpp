#include "dsl/Parser.h"
#include "ir/Analysis.h"
#include "ir/Lowering.h"
#include "ir/Transforms.h"
#include "support/Error.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

namespace cfd::ir {
namespace {

Program lowerSource(const char* source, LoweringOptions options = {}) {
  return lower(dsl::parseAndCheck(source), options);
}

TEST(LoweringTest, Fig1ProducesFig6Arrays) {
  const Program program = lowerSource(test::kInverseHelmholtz);
  // The paper's Fig. 6 kernel interface: S, D, u, v, t, r, t0..t3.
  EXPECT_EQ(program.tensors().size(), 10u);
  for (const char* name :
       {"S", "D", "u", "v", "t", "r", "t0", "t1", "t2", "t3"})
    EXPECT_NE(program.findTensor(name), nullptr) << name;
  // Transients carry the intermediate shape [11 11 11].
  EXPECT_EQ(program.findTensor("t0")->type.shape,
            (std::vector<std::int64_t>{11, 11, 11}));
  EXPECT_EQ(program.findTensor("t0")->kind, TensorKind::Transient);
  // 7 statements: 3 + 1 (Hadamard) + 3.
  EXPECT_EQ(program.operations().size(), 7u);
}

TEST(LoweringTest, ContractionSplitReducesWork) {
  // Each binary contraction is O(p^4): 3 * 11^4 per original contraction,
  // plus 11^3 multiplies for the Hadamard product.
  const Program program = lowerSource(test::kInverseHelmholtz);
  const OpWork work = totalWork(program);
  const std::int64_t p4 = 11LL * 11 * 11 * 11;
  EXPECT_EQ(work.fmul, 6 * p4 + 11 * 11 * 11);
  EXPECT_EQ(work.fadd, 6 * p4);
}

TEST(LoweringTest, SingleContractionStatementShapes) {
  const Program program = lowerSource(test::kMatMul2D);
  ASSERT_EQ(program.operations().size(), 1u);
  const Operation& op = program.operations()[0];
  EXPECT_EQ(op.kind, OpKind::Contract);
  ASSERT_EQ(op.pairs.size(), 1u);
  // C[i,j] = sum_k A[i,k] B[k,j]; domain = [4, 6, 5].
  const poly::Box domain = program.domain(op);
  EXPECT_EQ(domain.shape(), (std::vector<std::int64_t>{4, 6, 5}));
  EXPECT_EQ(program.numOutputDims(op), 2);
}

TEST(LoweringTest, AccessMapsMatchMatMulSemantics) {
  const Program program = lowerSource(test::kMatMul2D);
  const Operation& op = program.operations()[0];
  const auto reads = program.readAccesses(op);
  ASSERT_EQ(reads.size(), 2u);
  // Domain point (i=1, j=2, k=3): A[1,3], B[3,2], C[1,2].
  const std::int64_t point[] = {1, 2, 3};
  EXPECT_EQ(reads[0].map.evaluate(point),
            (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(reads[1].map.evaluate(point),
            (std::vector<std::int64_t>{3, 2}));
  EXPECT_EQ(program.writeAccess(op).map.evaluate(point),
            (std::vector<std::int64_t>{1, 2}));
}

TEST(LoweringTest, TraceIsRejected) {
  EXPECT_THROW(lowerSource("var input A : [3 3]\nvar output s : []\n"
                           "s = A . [[0 1]]"),
               FlowError);
}

TEST(LoweringTest, LeftToRightFactorizationAlsoVerifies) {
  LoweringOptions options;
  options.factorization = FactorizationOrder::LeftToRight;
  const Program program = lowerSource(test::kInverseHelmholtz, options);
  EXPECT_EQ(program.operations().size(), 7u);
  EXPECT_NO_THROW(program.verify());
}

TEST(LoweringTest, EntryWiseChain) {
  const Program program = lowerSource(test::kEntryWiseChain);
  // All statements are entry-wise or fills.
  for (const auto& op : program.operations())
    EXPECT_TRUE(op.kind == OpKind::EntryWise || op.kind == OpKind::Fill);
  EXPECT_NO_THROW(program.verify());
}

TEST(LoweringTest, DirectCopyAssignment) {
  const Program program =
      lowerSource("var input a : [5]\nvar output b : [5]\nb = a");
  ASSERT_EQ(program.operations().size(), 1u);
  EXPECT_EQ(program.operations()[0].kind, OpKind::Copy);
}

TEST(ProgramTest, VerifyCatchesUseBeforeDef) {
  Program program;
  const TensorId a =
      program.addTensor("a", TensorKind::Input, TensorType{{4}});
  const TensorId b =
      program.addTensor("b", TensorKind::Output, TensorType{{4}});
  const TensorId t =
      program.addTensor("t", TensorKind::Transient, TensorType{{4}});
  Operation bad;
  bad.kind = OpKind::Copy;
  bad.target = b;
  bad.lhs = t; // t is never written
  program.addOperation(bad);
  EXPECT_THROW(program.verify(), InternalError);
  (void)a;
}

TEST(ProgramTest, VerifyCatchesWriteToInput) {
  Program program;
  const TensorId a =
      program.addTensor("a", TensorKind::Input, TensorType{{4}});
  const TensorId b =
      program.addTensor("b", TensorKind::Input, TensorType{{4}});
  Operation bad;
  bad.kind = OpKind::Copy;
  bad.target = a;
  bad.lhs = b;
  program.addOperation(bad);
  EXPECT_THROW(program.verify(), InternalError);
}

TEST(ProgramTest, InterfaceOrderGroupsKinds) {
  const Program program = lowerSource(test::kInverseHelmholtz);
  const auto order = program.interfaceOrder();
  ASSERT_EQ(order.size(), 10u);
  // Inputs first (S, D, u), then output v, then locals t/r, then t0..t3.
  EXPECT_EQ(program.tensor(order[0]).name, "S");
  EXPECT_EQ(program.tensor(order[3]).name, "v");
  EXPECT_EQ(program.tensor(order[4]).kind, TensorKind::Local);
  EXPECT_EQ(program.tensor(order[9]).kind, TensorKind::Transient);
}

TEST(TransformsTest, CanonicalizeDropsIdentityCopies) {
  // 'w = a' materializes as a copy into the local w; the canonicalizer
  // keeps interface contracts but removes transient-level copies.
  Program program = lowerSource(
      "var input a : [4]\nvar output b : [4]\nvar w : [4]\nw = a\nb = w + a");
  const std::size_t before = program.operations().size();
  const CanonicalizeStats stats = canonicalize(program);
  EXPECT_LE(program.operations().size(), before);
  EXPECT_NO_THROW(program.verify());
  (void)stats;
}

TEST(AnalysisTest, TransitiveOperandSets) {
  const Program program = lowerSource(test::kInverseHelmholtz);
  const auto sets = transitiveOperandSets(program);
  const TensorId v = program.findTensor("v")->id;
  const TensorId u = program.findTensor("u")->id;
  const TensorId S = program.findTensor("S")->id;
  const TensorId D = program.findTensor("D")->id;
  // v transitively depends on everything.
  EXPECT_TRUE(sets.at(v).count(u));
  EXPECT_TRUE(sets.at(v).count(S));
  EXPECT_TRUE(sets.at(v).count(D));
  // u depends on nothing.
  EXPECT_TRUE(sets.at(u).empty());
}

TEST(AnalysisTest, DefUseChains) {
  const Program program = lowerSource(test::kInverseHelmholtz);
  const auto defs = definingStatement(program);
  const auto uses = readingStatements(program);
  const TensorId t = program.findTensor("t")->id;
  const TensorId S = program.findTensor("S")->id;
  EXPECT_GE(defs.at(t), 0);
  EXPECT_EQ(defs.at(S), -1);
  // S is read by all six contraction statements.
  EXPECT_EQ(uses.at(S).size(), 6u);
  // t is read exactly once (Hadamard).
  EXPECT_EQ(uses.at(t).size(), 1u);
}

TEST(AnalysisTest, WorkOfHadamard) {
  const Program program = lowerSource(test::kInverseHelmholtz);
  // Find the EntryWise op (r = D * t).
  const Operation* hadamard = nullptr;
  for (const auto& op : program.operations())
    if (op.kind == OpKind::EntryWise)
      hadamard = &op;
  ASSERT_NE(hadamard, nullptr);
  const OpWork work = workOf(program, *hadamard);
  EXPECT_EQ(work.fmul, 1331);
  EXPECT_EQ(work.loads, 2 * 1331);
  EXPECT_EQ(work.stores, 1331);
}

} // namespace
} // namespace cfd::ir
