// Tests for the compile daemon (DESIGN.md §15): pinned wire goldens
// for every request kind plus the malformed-request and
// version-mismatch error shapes, concurrent clients sharing one
// Session's caches through a live server, disconnect- and
// shutdown-driven cancellation, stale-socket replacement, and daemon
// restart warmth through a shared --cache-dir. The TSan CI job runs
// this suite alongside test_async.
#include "serve/Client.h"
#include "serve/Server.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cfd::serve {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Protocol goldens: the exact one-line wire form of each message kind
// is pinned, so shape drift — which breaks clients built against the
// documented protocol — fails a test instead of shipping silently
// (same contract style as test_diagnostics_golden.cpp).
// ---------------------------------------------------------------------

TEST(ServeProtocolGolden, CompileRequestWire) {
  Request request;
  request.kind = RequestKind::Compile;
  request.id = 7;
  request.source = "v = u\n";
  request.params = {{"unroll", "2"}, {"opt", "1"}};
  request.artifacts = {"c", "report"};
  request.priority = "high";
  request.deadlineMillis = 250;
  EXPECT_EQ(request.encode(),
            R"({"cfd_serve":1,"id":7,"kind":"compile","source":"v = u\n",)"
            R"("params":{"unroll":"2","opt":"1"},)"
            R"("artifacts":["c","report"],)"
            R"("priority":"high","deadline_ms":250})");
}

TEST(ServeProtocolGolden, MinimalRequestsOmitDefaultedMembers) {
  Request status;
  status.kind = RequestKind::Status;
  status.id = 3;
  EXPECT_EQ(status.encode(), R"({"cfd_serve":1,"id":3,"kind":"status"})");

  Request shutdown;
  shutdown.kind = RequestKind::Shutdown;
  shutdown.id = 4;
  EXPECT_EQ(shutdown.encode(),
            R"({"cfd_serve":1,"id":4,"kind":"shutdown"})");

  Request cancel;
  cancel.kind = RequestKind::Cancel;
  cancel.id = 9;
  cancel.target = 4;
  EXPECT_EQ(cancel.encode(),
            R"({"cfd_serve":1,"id":9,"kind":"cancel","target":4})");
}

TEST(ServeProtocolGolden, SweepRequestWire) {
  Request request;
  request.kind = RequestKind::Sweep;
  request.id = 2;
  request.source = "v = u\n";
  request.axes = {{"unroll", {"1", "2"}}, {"opt", {"0", "1"}}};
  EXPECT_EQ(request.encode(),
            R"({"cfd_serve":1,"id":2,"kind":"sweep","source":"v = u\n",)"
            R"("axes":[{"key":"unroll","values":["1","2"]},)"
            R"({"key":"opt","values":["0","1"]}]})");
}

TEST(ServeProtocolGolden, SweepChunkRequestWire) {
  Request request;
  request.kind = RequestKind::SweepChunk;
  request.id = 11;
  request.source = "v = u\n";
  request.params = {{"opt", "2"}};
  request.points = {{4, "unroll=1 m=2", {{"unroll", "1"}, {"m", "2"}}},
                    {5, "unroll=1 m=4", {{"unroll", "1"}, {"m", "4"}}}};
  EXPECT_EQ(
      request.encode(),
      R"({"cfd_serve":1,"id":11,"kind":"sweep_chunk","source":"v = u\n",)"
      R"("params":{"opt":"2"},)"
      R"("points":[{"index":4,"label":"unroll=1 m=2",)"
      R"("params":{"unroll":"1","m":"2"}},)"
      R"({"index":5,"label":"unroll=1 m=4",)"
      R"("params":{"unroll":"1","m":"4"}}]})");
  // And it round-trips: chunk points survive parse exactly.
  const Expected<Request> parsed = Request::parse(request.encode());
  ASSERT_TRUE(parsed.ok()) << parsed.errorText();
  EXPECT_EQ(*parsed, request);
}

TEST(ServeProtocolGolden, ProgressEventWire) {
  Response event;
  event.id = 11;
  event.kind = RequestKind::SweepChunk;
  event.ok = true;
  event.event = "progress";
  event.result = json::Value::object();
  event.result.set("done", std::int64_t{3});
  event.result.set("total", std::int64_t{8});
  EXPECT_EQ(event.encode(),
            R"({"cfd_serve":1,"id":11,"kind":"sweep_chunk","ok":true,)"
            R"("event":"progress","result":{"done":3,"total":8}})");
  const Expected<Response> parsed = Response::parse(event.encode());
  ASSERT_TRUE(parsed.ok()) << parsed.errorText();
  EXPECT_EQ(parsed->event, "progress");
  EXPECT_EQ(parsed->result.at("done").asInt(), 3);
}

TEST(ServeProtocolGolden, TuneRequestWireSerializesNonDefaultsOnly) {
  Request request;
  request.kind = RequestKind::Tune;
  request.id = 5;
  request.source = "v = u\n";
  request.axes = {{"unroll", {"1", "2"}}};
  request.strategy = "random";
  request.seed = 42;
  request.samples = 8;
  // maxSteps stays 32 (default) and must not appear on the wire.
  EXPECT_EQ(request.encode(),
            R"({"cfd_serve":1,"id":5,"kind":"tune","source":"v = u\n",)"
            R"("axes":[{"key":"unroll","values":["1","2"]}],)"
            R"("strategy":"random","seed":42,"samples":8})");
}

TEST(ServeProtocolGolden, RequestsRoundTripThroughParse) {
  Request compile;
  compile.kind = RequestKind::Compile;
  compile.id = 7;
  compile.source = "v = u\n";
  compile.params = {{"unroll", "2"}};
  compile.artifacts = {"c"};
  compile.priority = "low";
  compile.deadlineMillis = 125.5;

  Request tune;
  tune.kind = RequestKind::Tune;
  tune.id = 8;
  tune.source = "v = u\n";
  tune.axes = {{"m", {"4", "8"}}};
  tune.strategy = "hillclimb";
  tune.maxSteps = 5;
  tune.objectives = {"latency", "bram"};

  Request cancel;
  cancel.kind = RequestKind::Cancel;
  cancel.id = 9;
  cancel.target = 7;

  for (const Request& original : {compile, tune, cancel}) {
    const Expected<Request> parsed = Request::parse(original.encode());
    ASSERT_TRUE(parsed.ok()) << parsed.errorText();
    EXPECT_EQ(*parsed, original);
  }
}

TEST(ServeProtocolGolden, ErrorResponseWire) {
  DiagnosticList diagnostics;
  diagnostics.error({}, "malformed request: unexpected end of input",
                    "serve");
  const Response response =
      errorResponse(0, RequestKind::Invalid, std::move(diagnostics));
  EXPECT_EQ(response.encode(),
            R"({"cfd_serve":1,"id":0,"kind":"error","ok":false,)"
            R"("diagnostics":[{"severity":"error",)"
            R"("message":"malformed request: unexpected end of input",)"
            R"("stage":"serve"}]})");
}

TEST(ServeProtocolGolden, CancelledResponseWire) {
  DiagnosticList diagnostics;
  diagnostics.error({}, "cancelled: client disconnected", "serve");
  const Response response = errorResponse(12, RequestKind::Compile,
                                          std::move(diagnostics),
                                          /*cancelled=*/true);
  EXPECT_EQ(response.encode(),
            R"({"cfd_serve":1,"id":12,"kind":"compile","ok":false,)"
            R"("cancelled":true,)"
            R"("diagnostics":[{"severity":"error",)"
            R"("message":"cancelled: client disconnected",)"
            R"("stage":"serve"}]})");
}

TEST(ServeProtocolGolden, ResponseRoundTripsDiagnostics) {
  DiagnosticList diagnostics;
  diagnostics.error(SourceLocation{2, 5}, "undefined tensor 'w'", "sema");
  diagnostics.warning({}, "unused input 'S'", "sema");
  const Response original =
      errorResponse(4, RequestKind::Compile, std::move(diagnostics));
  const Expected<Response> parsed = Response::parse(original.encode());
  ASSERT_TRUE(parsed.ok()) << parsed.errorText();
  EXPECT_EQ(parsed->id, 4);
  EXPECT_EQ(parsed->kind, RequestKind::Compile);
  EXPECT_FALSE(parsed->ok);
  ASSERT_EQ(parsed->diagnostics.size(), 2u);
  const Diagnostic& error = parsed->diagnostics.all()[0];
  EXPECT_EQ(error.severity, Severity::Error);
  EXPECT_EQ(error.message, "undefined tensor 'w'");
  EXPECT_EQ(error.stage, "sema");
  EXPECT_EQ(error.location.line, 2);
  EXPECT_EQ(error.location.column, 5);
  EXPECT_EQ(parsed->diagnostics.all()[1].severity, Severity::Warning);
}

/// Parses `line` expecting a failure; returns the single error message.
std::string parseError(const std::string& line,
                       std::int64_t* echoId = nullptr) {
  const Expected<Request> parsed = Request::parse(line, echoId);
  EXPECT_FALSE(parsed.ok()) << "parsed: " << line;
  if (parsed.ok())
    return {};
  EXPECT_EQ(parsed.diagnostics().size(), 1u);
  EXPECT_EQ(parsed.diagnostics().all()[0].stage, "serve");
  return parsed.diagnostics().all()[0].message;
}

TEST(ServeProtocolGolden, MalformedAndMismatchedRequestsPinnedErrors) {
  EXPECT_EQ(parseError("this is not json"),
            "malformed request: JSON parse error at offset 0: "
            "invalid literal");
  EXPECT_EQ(parseError("[1,2]"),
            "malformed request: expected a JSON object");
  EXPECT_EQ(parseError(R"({"id":1,"kind":"status"})"),
            "not a cfd-serve message (missing 'cfd_serve' version member)");
  EXPECT_EQ(parseError(R"({"cfd_serve":2,"id":1,"kind":"status"})"),
            "protocol version mismatch: peer speaks v2, this build "
            "speaks v1");
  EXPECT_EQ(parseError(R"({"cfd_serve":1,"id":1,"kind":"frobnicate"})"),
            "unknown request kind 'frobnicate' (valid: compile, sweep, "
            "tune, sweep_chunk, status, cancel, shutdown)");
  EXPECT_EQ(parseError(R"({"cfd_serve":1,"kind":"status"})"),
            "request needs a positive 'id' to address the response");
  EXPECT_EQ(parseError(R"({"cfd_serve":1,"id":1,"kind":"compile"})"),
            "'compile' request has no 'source'");
  EXPECT_EQ(parseError(R"({"cfd_serve":1,"id":1,"kind":"cancel"})"),
            "'cancel' request has no 'target' request id");
  EXPECT_EQ(parseError(R"({"cfd_serve":1,"id":1,"kind":"sweep_chunk",)"
                       R"("source":"v = u"})"),
            "'sweep_chunk' request has no 'points'");
  EXPECT_EQ(parseError(R"({"cfd_serve":1,"id":1,"kind":"compile",)"
                       R"("source":"v = u","priority":"urgent"})"),
            "unknown priority 'urgent' (valid: low, normal, high)");
}

TEST(ServeProtocolGolden, ErrorParseStillEchoesTheRequestId) {
  std::int64_t echoId = -1;
  parseError(R"({"cfd_serve":1,"id":41,"kind":"frobnicate"})", &echoId);
  EXPECT_EQ(echoId, 41); // readable id survives a kind error
  parseError("this is not json", &echoId);
  EXPECT_EQ(echoId, 0); // unreadable id resets to the reserved 0
}

// ---------------------------------------------------------------------
// Live-server tests: a real daemon on a per-test socket path.
// ---------------------------------------------------------------------

/// Occupies every pool worker until release() is called, so jobs
/// submitted meanwhile stay deterministically queued (same helper
/// shape as test_async.cpp).
class PoolBlocker {
public:
  PoolBlocker(Session& session, int workers = 1)
      : gate_(release_.get_future().share()) {
    for (int i = 0; i < workers; ++i)
      session.workerPool().post(
          [this] {
            ++running_;
            gate_.wait();
          },
          WorkerPool::kPriorityHigh);
    while (running_.load() < workers)
      std::this_thread::yield();
  }
  ~PoolBlocker() { release(); }

  void release() {
    if (!released_) {
      released_ = true;
      release_.set_value();
    }
  }

private:
  std::promise<void> release_;
  std::shared_future<void> gate_;
  std::atomic<int> running_{0};
  bool released_ = false;
};

/// A per-test socket path (and scratch dir) under the system temp
/// root. Unix socket paths are limited to ~107 bytes, so the fixture
/// keeps names short instead of deriving them from the test name.
class ServeTest : public ::testing::Test {
protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("cfd_serve_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
    socketPath_ = root_ + "/d.sock";
  }
  void TearDown() override { fs::remove_all(root_); }

  Request compileRequest(const std::string& source,
                         std::vector<std::pair<std::string, std::string>>
                             params = {}) {
    Request request;
    request.kind = RequestKind::Compile;
    request.source = source;
    request.params = std::move(params);
    return request;
  }

  /// Sends a status request and returns the response's result object.
  json::Value statusOf(Client& client) {
    Request request;
    request.kind = RequestKind::Status;
    const Expected<Response> response = client.call(std::move(request));
    EXPECT_TRUE(response.ok() && response->ok);
    return response->result;
  }

  std::string root_;
  std::string socketPath_;
  static inline std::atomic<int> counter_{0};
};

TEST_F(ServeTest, EightClientsShareOneStageCacheAcrossWaves) {
  Session session(SessionOptions{.workers = 4});
  Server server(session, {.socketPath = socketPath_});
  const Expected<bool> started = server.start();
  ASSERT_TRUE(started.ok()) << started.errorText();

  const std::string source = test::inverseHelmholtzSource(8);
  constexpr int kClients = 8;

  // One wave = 8 concurrent clients, each compiling its own unroll
  // variant. Distinct variants still share per-stage artifacts through
  // the one StageCache (stage-prefix adoption, DESIGN.md §9).
  auto wave = [&] {
    std::vector<std::thread> threads;
    std::atomic<int> okCount{0};
    for (int i = 0; i < kClients; ++i)
      threads.emplace_back([&, i] {
        Expected<Client> client = Client::connect(socketPath_);
        ASSERT_TRUE(client.ok()) << client.errorText();
        const Expected<Response> response = client->call(compileRequest(
            source, {{"unroll", std::to_string(1 << (i % 4))}}));
        ASSERT_TRUE(response.ok()) << response.errorText();
        ASSERT_TRUE(response->ok) << response->encode();
        EXPECT_TRUE(response->result.contains("cache_hit"));
        okCount += response->ok ? 1 : 0;
      });
    for (std::thread& thread : threads)
      thread.join();
    return okCount.load();
  };

  ASSERT_EQ(wave(), kClients);
  Expected<Client> probe = Client::connect(socketPath_);
  ASSERT_TRUE(probe.ok()) << probe.errorText();
  const json::Value cold = statusOf(*probe);
  const std::int64_t coldFlowHits =
      cold.at("stats").at("flow_cache").at("hits").asInt();
  const std::int64_t coldStageHits =
      cold.at("stats").at("stage_cache").at("hits").asInt();
  // 8 clients over 4 distinct variants: repeats hit the flow cache,
  // and distinct variants share stage prefixes.
  EXPECT_GT(coldStageHits, 0);

  // The identical second wave rides the warm caches: every compile is
  // a flow-cache hit, so the hit rate strictly rises.
  ASSERT_EQ(wave(), kClients);
  const json::Value warm = statusOf(*probe);
  const std::int64_t warmFlowHits =
      warm.at("stats").at("flow_cache").at("hits").asInt();
  EXPECT_GE(warmFlowHits, coldFlowHits + kClients);
  EXPECT_EQ(warm.at("stats").at("flow_cache").at("misses").asInt(),
            cold.at("stats").at("flow_cache").at("misses").asInt());

  // The status payload also carries the server's own counters and the
  // same human report the CLI prints.
  EXPECT_EQ(warm.at("server").at("protocol_errors").asInt(), 0);
  EXPECT_NE(warm.at("report").asString().find("flow cache:"),
            std::string::npos);

  server.requestStop();
  server.join();
  EXPECT_FALSE(fs::exists(socketPath_));
  // No lost or duplicate responses: one response per request.
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.requestsReceived, stats.responsesSent);
  EXPECT_EQ(stats.connectionsAccepted, stats.connectionsClosed);
}

TEST_F(ServeTest, ClientDisconnectCancelsItsQueuedJob) {
  Session session(SessionOptions{.workers = 1});
  Server server(session, {.socketPath = socketPath_});
  ASSERT_TRUE(server.start().ok());

  PoolBlocker blocker(session); // the submitted compile stays queued
  {
    Expected<Client> client = Client::connect(socketPath_);
    ASSERT_TRUE(client.ok()) << client.errorText();
    Request request = compileRequest(test::kInverseHelmholtz);
    request.id = client->nextId();
    ASSERT_TRUE(client->send(request));
    // Wait until the daemon has actually submitted the job, then
    // vanish without reading the response — a crashed client.
    while (session.stats().jobsSubmitted == 0)
      std::this_thread::yield();
  }
  // EOF on the connection must cancel the queued job cooperatively.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().cancelledOnDisconnect == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(server.stats().cancelledOnDisconnect, 1);
  blocker.release();

  server.requestStop();
  server.join();
  EXPECT_EQ(session.stats().jobsCancelled, 1);
}

TEST_F(ServeTest, ShutdownCancelsQueuedJobsAndAnswersInFlightClients) {
  Session session(SessionOptions{.workers = 1});
  Server server(session, {.socketPath = socketPath_});
  ASSERT_TRUE(server.start().ok());

  PoolBlocker blocker(session);
  Expected<Client> client = Client::connect(socketPath_);
  ASSERT_TRUE(client.ok()) << client.errorText();
  Request request = compileRequest(test::kInverseHelmholtz);
  request.id = client->nextId();
  ASSERT_TRUE(client->send(request));
  while (session.stats().jobsSubmitted == 0)
    std::this_thread::yield();

  server.requestStop(); // SIGINT/SIGTERM land here too
  // The job is still queued behind the blocker, so the drain must
  // cancel it — and its client still gets a response: a structured
  // cancellation, not a dropped connection. (The blocker stays down
  // until the response arrives, so the job can never sneak into
  // Running first.)
  const Expected<Response> response = client->receive(request.id);
  blocker.release();
  ASSERT_TRUE(response.ok()) << response.errorText();
  EXPECT_FALSE(response->ok);
  EXPECT_TRUE(response->cancelled) << response->encode();
  server.join();
  EXPECT_FALSE(fs::exists(socketPath_));
  EXPECT_EQ(server.stats().cancelledOnShutdown, 1);
}

TEST_F(ServeTest, CompileErrorsTravelAsDiagnostics) {
  Session session(SessionOptions{.workers = 1});
  Server server(session, {.socketPath = socketPath_});
  ASSERT_TRUE(server.start().ok());
  Expected<Client> client = Client::connect(socketPath_);
  ASSERT_TRUE(client.ok());

  const Expected<Response> response =
      client->call(compileRequest("var input A : [4\n"));
  ASSERT_TRUE(response.ok()) << response.errorText();
  EXPECT_FALSE(response->ok);
  EXPECT_FALSE(response->cancelled);
  ASSERT_TRUE(response->diagnostics.hasErrors());
  // The compile diagnostics keep their own stage; only protocol
  // failures are attributed to "serve".
  EXPECT_NE(response->diagnostics.all()[0].stage, "serve");

  server.requestStop();
  server.join();
}

TEST_F(ServeTest, MalformedWireLineGetsAnIdZeroErrorResponse) {
  Session session(SessionOptions{.workers = 1});
  Server server(session, {.socketPath = socketPath_});
  ASSERT_TRUE(server.start().ok());

  // A raw socket, not a Client: the point is sending bytes no valid
  // client would produce.
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socketPath_.c_str(),
              socketPath_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0);
  const std::string line = "this is not json\n";
  ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  std::string received;
  char chunk[4096];
  while (received.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    received.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const Expected<Response> response =
      Response::parse(received.substr(0, received.find('\n')));
  ASSERT_TRUE(response.ok()) << response.errorText();
  EXPECT_EQ(response->id, 0);
  EXPECT_EQ(response->kind, RequestKind::Invalid);
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->diagnostics.all()[0].stage, "serve");

  server.requestStop();
  server.join();
  EXPECT_EQ(server.stats().protocolErrors, 1);
}

TEST_F(ServeTest, ReadLineSurfacesUnterminatedTailAtEof) {
  // A daemon that crashes (or a peer that forgets the trailing
  // newline) after writing a complete response must not lose that
  // response: readLine hands the EOF-terminated tail out as a line.
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socketPath_.c_str(),
              socketPath_.size() + 1);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);

  std::thread peer([&] {
    const int fd = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    // A valid response with NO trailing '\n', then an orderly close.
    Response response;
    response.id = 1;
    response.kind = RequestKind::Status;
    response.ok = true;
    response.result = json::Value::object();
    const std::string wire = response.encode();
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    ::close(fd);
  });

  Expected<Client> client = Client::connect(socketPath_);
  ASSERT_TRUE(client.ok()) << client.errorText();
  const Expected<Response> received = client->receive(1);
  ASSERT_TRUE(received.ok()) << received.errorText();
  EXPECT_EQ(received->id, 1);
  EXPECT_TRUE(received->ok);
  // The tail is surfaced exactly once; the next read reports the EOF.
  const Expected<Response> eof = client->receiveAny();
  EXPECT_FALSE(eof.ok());
  peer.join();
  ::close(listener);
}

TEST_F(ServeTest, SweepChunkStreamsProgressAndMatchesLocalRows) {
  Session session(SessionOptions{.workers = 2});
  Server server(session, {.socketPath = socketPath_});
  ASSERT_TRUE(server.start().ok());
  Expected<Client> client = Client::connect(socketPath_);
  ASSERT_TRUE(client.ok()) << client.errorText();

  Request request;
  request.kind = RequestKind::SweepChunk;
  request.id = client->nextId();
  request.source = test::kInverseHelmholtz;
  request.points = {{0, "unroll=1", {{"unroll", "1"}}},
                    {1, "unroll=2", {{"unroll", "2"}}},
                    {2, "unroll=4", {{"unroll", "4"}}}};
  ASSERT_TRUE(client->send(request));

  // Events stream before the final response on the same connection;
  // the final result rows arrive in point order with only the
  // deterministic fields.
  int progressEvents = 0;
  Expected<Response> final = Expected<Response>::failure("none", "test");
  for (;;) {
    Expected<Response> message = client->receiveAny();
    ASSERT_TRUE(message.ok()) << message.errorText();
    if (message->event == "progress") {
      ++progressEvents;
      EXPECT_EQ(message->result.at("total").asInt(), 3);
      continue;
    }
    final = std::move(message);
    break;
  }
  ASSERT_TRUE(final->ok) << final->encode();
  EXPECT_EQ(progressEvents, 3); // one per design point
  const json::Value& rows = final->result.at("rows");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.at(0).at("label").asString(), "unroll=1");
  EXPECT_EQ(rows.at(1).at("index").asInt(), 1);
  EXPECT_TRUE(rows.at(2).at("feasible").asBool());
  EXPECT_TRUE(rows.at(0).contains("kernel_us"));
  EXPECT_FALSE(rows.at(0).contains("cache_hit")); // run-dependent: banned

  // Events are not responses: the one-response-per-request invariant
  // holds, with events counted separately.
  server.requestStop();
  server.join();
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.requestsReceived, stats.responsesSent);
  EXPECT_EQ(stats.progressEvents, 3);
}

TEST_F(ServeTest, StaleSocketIsReplacedButALiveDaemonIsNot) {
  // A crashed daemon leaves its socket file behind; binding a fresh
  // listener and closing it immediately reproduces exactly that state.
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socketPath_.c_str(),
              socketPath_.size() + 1);
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address)),
            0);
  ::close(stale);
  ASSERT_TRUE(fs::exists(socketPath_));

  Session session(SessionOptions{.workers = 1});
  Server server(session, {.socketPath = socketPath_});
  const Expected<bool> started = server.start();
  ASSERT_TRUE(started.ok()) << started.errorText();
  EXPECT_EQ(server.stats().staleSocketsReplaced, 1);

  // While this daemon is live, a second one must refuse the path with
  // a structured error instead of stealing the socket.
  Session other(SessionOptions{.workers = 1});
  Server second(other, {.socketPath = socketPath_});
  const Expected<bool> refused = second.start();
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.errorText().find("already serving"),
            std::string::npos);

  // The live daemon is unharmed: a client can still round-trip.
  Expected<Client> client = Client::connect(socketPath_);
  ASSERT_TRUE(client.ok()) << client.errorText();
  const Expected<Response> response =
      client->call(compileRequest(test::kMatMul2D));
  ASSERT_TRUE(response.ok() && response->ok);

  server.requestStop();
  server.join();
}

TEST_F(ServeTest, RestartedDaemonReusesTheCacheDirOnDisk) {
  const std::string cacheDir = root_ + "/cache";
  const std::string source = test::inverseHelmholtzSource(6);

  // First daemon lifetime: cold compile, artifacts published to disk.
  {
    Session session(
        SessionOptions{.workers = 1, .cacheDir = cacheDir});
    Server server(session, {.socketPath = socketPath_});
    ASSERT_TRUE(server.start().ok());
    Expected<Client> client = Client::connect(socketPath_);
    ASSERT_TRUE(client.ok());
    const Expected<Response> response =
        client->call(compileRequest(source));
    ASSERT_TRUE(response.ok() && response->ok);
    EXPECT_FALSE(response->result.at("cache_hit").asBool());
    EXPECT_GT(session.stats().artifactStore.publishes, 0);
    server.requestStop();
    server.join();
  }

  // Second daemon lifetime on the same dir: the in-memory caches are
  // empty, but the store warms the compile from disk.
  Session session(SessionOptions{.workers = 1, .cacheDir = cacheDir});
  Server server(session, {.socketPath = socketPath_});
  ASSERT_TRUE(server.start().ok());
  Expected<Client> client = Client::connect(socketPath_);
  ASSERT_TRUE(client.ok());
  const Expected<Response> response =
      client->call(compileRequest(source));
  ASSERT_TRUE(response.ok() && response->ok);
  EXPECT_GT(session.stats().artifactStore.hits, 0);

  const json::Value status = statusOf(*client);
  EXPECT_TRUE(
      status.at("stats").at("artifact_store").at("enabled").asBool());
  EXPECT_GT(status.at("stats").at("artifact_store").at("hits").asInt(),
            0);
  server.requestStop();
  server.join();
}

} // namespace
} // namespace cfd::serve
