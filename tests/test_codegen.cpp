#include "core/Flow.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cfd::codegen {
namespace {

Flow compileHelmholtz(FlowOptions options = {}) {
  return Flow::compile(test::kInverseHelmholtz, options);
}

TEST(CEmitterTest, PrototypeMatchesFig6) {
  const Flow flow = compileHelmholtz();
  const std::string proto = flow.kernelPrototype();
  EXPECT_NE(proto.find("void kernel_body("), std::string::npos);
  // Interface order: inputs, output, locals, transients (Fig. 6).
  const auto pos = [&](const char* name) {
    return proto.find(std::string("double ") + name + "[");
  };
  EXPECT_LT(pos("S"), pos("D"));
  EXPECT_LT(pos("D"), pos("u"));
  EXPECT_LT(pos("u"), pos("v"));
  EXPECT_LT(pos("v"), pos("t"));
  EXPECT_NE(pos("t3"), std::string::npos);
  // Inputs are const.
  EXPECT_NE(proto.find("const double S"), std::string::npos);
  EXPECT_EQ(proto.find("const double v"), std::string::npos);
}

TEST(CEmitterTest, HlsPragmasPresent) {
  const Flow flow = compileHelmholtz();
  const std::string code = flow.cCode();
  EXPECT_NE(code.find("#pragma HLS INTERFACE ap_memory port=S"),
            std::string::npos);
  EXPECT_NE(code.find("#pragma HLS PIPELINE II=1"), std::string::npos);
}

TEST(CEmitterTest, PragmasCanBeDisabled) {
  FlowOptions options;
  options.emitter.hlsPragmas = false;
  const Flow flow = compileHelmholtz(options);
  EXPECT_EQ(flow.cCode().find("#pragma HLS"), std::string::npos);
}

TEST(CEmitterTest, HardwareScheduleUsesRmwAccumulation) {
  const Flow flow = compileHelmholtz();
  const std::string code = flow.cCode();
  // The hardware objective keeps reductions out of the innermost loop,
  // so contractions accumulate through the PLM arrays (+=) and no
  // register accumulator appears.
  EXPECT_NE(code.find("+="), std::string::npos);
  EXPECT_EQ(code.find("double acc"), std::string::npos);
}

TEST(CEmitterTest, SoftwareScheduleUsesRegisterAccumulator) {
  FlowOptions options;
  options.reschedule.objective = sched::ScheduleObjective::Software;
  const Flow flow = compileHelmholtz(options);
  const std::string code = flow.cCode();
  EXPECT_NE(code.find("double acc"), std::string::npos);
}

TEST(CEmitterTest, AffineOffsetsUseLayoutStrides) {
  const Flow flow = compileHelmholtz();
  const std::string code = flow.cCode();
  // Row-major [11 11 11]: offsets of the form 121*i + 11*j + k.
  EXPECT_NE(code.find("121*"), std::string::npos);
  EXPECT_NE(code.find("11*"), std::string::npos);
}

TEST(CEmitterTest, EveryStatementEmitsComment) {
  const Flow flow = compileHelmholtz();
  const std::string code = flow.cCode();
  for (int s = 0; s < 7; ++s)
    EXPECT_NE(code.find("/* S" + std::to_string(s)), std::string::npos);
}

/// Compiles `code` with the host C compiler and returns the stdout of
/// the produced binary. Requires emitTestMain.
std::string compileAndRun(const std::string& code, const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string cPath = dir + "/kernel_" + tag + ".c";
  const std::string binPath = dir + "/kernel_" + tag + ".bin";
  const std::string outPath = dir + "/kernel_" + tag + ".out";
  {
    std::ofstream out(cPath);
    out << code;
  }
  const std::string compile =
      "cc -std=c99 -O2 -o " + binPath + " " + cPath + " 2>" + dir +
      "/cc_errors_" + tag + ".txt";
  if (std::system(compile.c_str()) != 0) {
    std::ifstream errors(dir + "/cc_errors_" + tag + ".txt");
    std::stringstream ss;
    ss << errors.rdbuf();
    ADD_FAILURE() << "generated C failed to compile:\n" << ss.str();
    return {};
  }
  const std::string run = binPath + " > " + outPath;
  EXPECT_EQ(std::system(run.c_str()), 0);
  std::ifstream result(outPath);
  std::stringstream ss;
  ss << result.rdbuf();
  return ss.str();
}

/// Integration: the emitted C99, compiled by a real C compiler, must
/// produce bit-identical results to the in-process interpreter (both
/// use the same deterministic inputs).
void checkGeneratedCode(FlowOptions options, const std::string& tag) {
  options.emitter.emitTestMain = true;
  const Flow flow = Flow::compile(test::kInverseHelmholtz, options);
  const std::string output = compileAndRun(flow.cCode(), tag);
  ASSERT_FALSE(output.empty());

  // Interpreter reference with the same seeds (interface order).
  eval::TensorStore store(flow.program(), flow.schedule().layouts);
  std::uint64_t seed = 1;
  for (ir::TensorId id : flow.program().interfaceOrder()) {
    const auto& tensor = flow.program().tensor(id);
    if (tensor.kind == ir::TensorKind::Input)
      store.import(id, eval::makeTestInput(tensor.type.shape, seed++));
  }
  eval::execute(flow.schedule(), store);
  const eval::DenseTensor v =
      store.exportTensor(flow.program().findTensor("v")->id);

  std::istringstream lines(output);
  double value = 0.0;
  std::size_t index = 0;
  double maxError = 0.0;
  while (lines >> value) {
    ASSERT_LT(index, v.data.size());
    maxError = std::max(maxError, std::abs(value - v.data[index]));
    ++index;
  }
  EXPECT_EQ(index, v.data.size());
  EXPECT_LE(maxError, 1e-12);
}

TEST(CEmitterTest, UnrollEmitsPartitionAndUnrollPragmas) {
  FlowOptions options;
  options.hls.unrollFactor = 4;
  const Flow flow = compileHelmholtz(options);
  const std::string code = flow.cCode();
  EXPECT_NE(code.find("#pragma HLS UNROLL factor=4"), std::string::npos);
  EXPECT_NE(code.find(
                "#pragma HLS ARRAY_PARTITION variable=u cyclic factor=4"),
            std::string::npos);
}

TEST(CodegenIntegrationTest, HardwareScheduleCompilesAndMatches) {
  checkGeneratedCode({}, "hw");
}

TEST(CodegenIntegrationTest, SoftwareScheduleCompilesAndMatches) {
  FlowOptions options;
  options.reschedule.objective = sched::ScheduleObjective::Software;
  checkGeneratedCode(options, "sw");
}

TEST(CodegenIntegrationTest, ColumnMajorLayoutCompilesAndMatches) {
  FlowOptions options;
  options.layouts.defaultLayout = sched::LayoutKind::ColumnMajor;
  checkGeneratedCode(options, "colmajor");
}

TEST(CodegenIntegrationTest, NoRescheduleCompilesAndMatches) {
  FlowOptions options;
  options.reschedule.permuteLoops = false;
  options.reschedule.reorderStatements = false;
  checkGeneratedCode(options, "ref");
}

} // namespace
} // namespace cfd::codegen
